#include "sim/coordinator.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "schedpt/schedule.h"
#include "support/log.h"

namespace usw::sim {

namespace {

/// Serial grant order: nondecreasing (eligibility, rank id) — the token
/// always goes to the minimum clock/wake, ties to the lowest rank.
bool grant_order_less(TimePs ta, int ra, TimePs tb, int rb) {
  return ta != tb ? ta < tb : ra < rb;
}

/// Atomic maximum: raises `target` to `value` if larger.
void atomic_max(std::atomic<TimePs>& target, TimePs value) {
  TimePs cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

int default_grant_cap() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : static_cast<int>(hc);
}

}  // namespace

CoordinatorSpec CoordinatorSpec::parse(const std::string& text) {
  CoordinatorSpec spec;
  if (text.empty() || text == "serial") return spec;
  const std::string kPrefix = "parallel";
  if (text.compare(0, kPrefix.size(), kPrefix) != 0)
    throw ConfigError("unknown coordinator '" + text +
                      "' (serial|parallel[:threads=N])");
  spec.mode = CoordinatorMode::kParallel;
  if (text.size() == kPrefix.size()) return spec;
  const std::string rest = text.substr(kPrefix.size());
  const std::string kThreads = ":threads=";
  if (rest.compare(0, kThreads.size(), kThreads) != 0)
    throw ConfigError("unknown coordinator option '" + text +
                      "' (serial|parallel[:threads=N])");
  const std::string num = rest.substr(kThreads.size());
  std::size_t used = 0;
  int n = 0;
  try {
    n = std::stoi(num, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != num.size() || num.empty() || n < 1)
    throw ConfigError("coordinator threads must be a positive integer, got '" +
                      num + "'");
  spec.max_concurrent = n;
  return spec;
}

std::string CoordinatorSpec::describe() const {
  if (!parallel()) return "serial";
  if (max_concurrent <= 0) return "parallel";
  return "parallel:threads=" + std::to_string(max_concurrent);
}

Coordinator::Coordinator(int nranks)
    : Coordinator(nranks, CoordinatorSpec{}, 0) {}

Coordinator::Coordinator(int nranks, const CoordinatorSpec& spec, TimePs window)
    : ranks_(static_cast<std::size_t>(nranks)) {
  USW_ASSERT_MSG(nranks > 0, "coordinator needs at least one rank");
  USW_ASSERT_MSG(window >= 0, "negative coordinator window");
  // A zero window would grant only the minimum rank anyway; take the
  // cheaper serial path outright. Single-rank runs have nothing to overlap.
  par_ = spec.parallel() && window > 0 && nranks > 1;
  window_ = window;
  max_concurrent_ = spec.max_concurrent > 0 ? spec.max_concurrent
                                            : default_grant_cap();
}

void Coordinator::start(int rank) {
  std::unique_lock<std::mutex> lk(lock_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kUnstarted, "rank started twice");
  slot.state = State::kReady;
  slot.clock.store(0, std::memory_order_relaxed);
  ++started_;
  if (par_) {
    // Hold everyone at the starting line until every rank thread has
    // registered, then open the first window.
    if (started_ == size()) open_window_locked();
  } else {
    if (running_ < 0) pick_next_locked();
  }
  block_until_running_locked(lk, rank);
}

void Coordinator::finish(int rank) {
  std::unique_lock<std::mutex> lk(lock_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kRunning ||
                     cancelled_.load(std::memory_order_relaxed),
                 "finish requires the grant");
  const bool was_running = slot.state == State::kRunning;
  slot.state = State::kFinished;
  if (par_) {
    if (was_running && !cancelled_.load(std::memory_order_relaxed))
      release_locked();
  } else {
    if (running_ == rank) {
      running_ = -1;
      pick_next_locked();
    }
  }
}

TimePs Coordinator::now(int rank) const {
  // The clock is atomic, so no lock: the owner reads its own writes, and
  // any cross-thread reader (diagnostics) tolerates a stale value.
  return ranks_.at(static_cast<std::size_t>(rank))
      .clock.load(std::memory_order_relaxed);
}

void Coordinator::advance(int rank, TimePs dt) {
  USW_ASSERT_MSG(dt >= 0, "cannot advance virtual time backwards");
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  if (par_) {
    // Lock-free: only the owning (granted) rank thread mutates its clock.
    slot.clock.fetch_add(dt, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lk(lock_);
  USW_ASSERT_MSG(slot.state == State::kRunning, "advance requires the grant");
  slot.clock.store(slot.clock.load(std::memory_order_relaxed) + dt,
                   std::memory_order_relaxed);
}

void Coordinator::gate(int rank) {
  if (par_) {
    RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
    if (!cancelled_.load(std::memory_order_relaxed)) {
      const TimePs t = slot.clock.load(std::memory_order_relaxed);
      // Still strictly inside the window: every message that could be
      // matchable at t was already enqueued when the window opened (sends
      // from concurrently-running ranks arrive at or after the window
      // end), so observing shared state now is exactly as safe as holding
      // the serial token. Serial would park kReady here and be re-granted
      // at the same clock — a segment boundary, nothing more.
      if (t < window_end_.load(std::memory_order_relaxed) && !would_stall(t)) {
        slot.seg_start = t;
        return;
      }
    }
    park_and_block(rank, State::kReady, kNever);
    return;
  }
  std::unique_lock<std::mutex> lk(lock_);
  if (cancelled_.load(std::memory_order_relaxed)) throw Cancelled(cancel_reason_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kRunning, "gate requires the grant");
  slot.state = State::kReady;
  running_ = -1;
  pick_next_locked();
  block_until_running_locked(lk, rank);
}

void Coordinator::wait_until(int rank, TimePs wake) {
  wait_until_impl(rank, wake, nullptr);
}

void Coordinator::wait_until(int rank, TimePs wake,
                             const std::function<TimePs()>& refresh) {
  wait_until_impl(rank, wake, &refresh);
}

void Coordinator::wait_until_impl(int rank, TimePs wake,
                                  const std::function<TimePs()>* refresh) {
  if (par_) {
    RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
    if (!cancelled_.load(std::memory_order_relaxed)) {
      const TimePs t = slot.clock.load(std::memory_order_relaxed);
      if (wake != kNever && wake <= t) return;  // already past the event:
                                                // serial never parks, so no
                                                // segment boundary either
      // Serial would park kWaiting here; pending notify records may lower
      // the wake (never below the clock). Resolve them first.
      const TimePs w = resolve_notifies(rank, slot, t, wake, true);
      if (w <= t) {
        // A recorded arrival (from a sender granted after this rank's
        // segment) fires the wait at the current clock, exactly as the
        // serial wake-up at max(stamp, clock) would.
        slot.seg_start = t;
        return;
      }
      // An effective wake strictly inside the window cannot be preempted
      // by any further notify: in-window sends arrive at or after the
      // window end, and every earlier record was resolved above. Jump.
      if (w != kNever && w < window_end_.load(std::memory_order_relaxed) &&
          !would_stall(w)) {
        slot.clock.store(w, std::memory_order_relaxed);
        slot.seg_start = w;
        return;
      }
      park_and_block(rank, State::kWaiting, w, refresh);
      return;
    }
    park_and_block(rank, State::kWaiting, wake);
    return;
  }
  std::unique_lock<std::mutex> lk(lock_);
  if (cancelled_.load(std::memory_order_relaxed)) throw Cancelled(cancel_reason_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kRunning, "wait_until requires the grant");
  if (wake != kNever && wake <= slot.clock.load(std::memory_order_relaxed))
    return;  // already past the event
  slot.state = State::kWaiting;
  slot.wake = wake;
  running_ = -1;
  pick_next_locked();
  block_until_running_locked(lk, rank);
}

void Coordinator::notify(int rank, TimePs stamp, int src) {
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  if (par_) {
    // Recorded, not applied: whether serial would deliver or drop this
    // notification depends on where the send sits in the serial grant
    // order — its position is (sender's segment start, sender id). The
    // target resolves the record itself (resolve_notifies) at its next
    // wait or at the window barrier, whichever the serial rule demands.
    USW_ASSERT_MSG(src >= 0 && src < size(),
                   "parallel notify requires the posting rank");
    const TimePs seg = ranks_.at(static_cast<std::size_t>(src)).seg_start;
    {
      std::lock_guard<std::mutex> lk(slot.notify_mu);
      slot.pending.push_back(NotifyRec{seg, src, stamp});
    }
    slot.has_notify.store(true, std::memory_order_release);
    return;
  }
  std::lock_guard<std::mutex> lk(lock_);
  if (slot.state != State::kWaiting) return;  // will observe it when it polls
  const TimePs effective =
      std::max(stamp, slot.clock.load(std::memory_order_relaxed));
  slot.wake = std::min(slot.wake, effective);
}

TimePs Coordinator::resolve_notifies(int rank, RankSlot& slot, TimePs park_clock,
                                     TimePs wake, bool waiting) {
  if (slot.has_notify.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(slot.notify_mu);
    slot.retained.insert(slot.retained.end(), slot.pending.begin(),
                         slot.pending.end());
    slot.pending.clear();
    slot.has_notify.store(false, std::memory_order_relaxed);
  }
  if (slot.retained.empty()) return wake;
  std::sort(slot.retained.begin(), slot.retained.end(),
            [](const NotifyRec& a, const NotifyRec& b) {
              return grant_order_less(a.seg, a.src, b.seg, b.src);
            });
  // For a wait park, records from before this rank's current segment fell
  // in an earlier interval: either serial already dropped them (the rank
  // was running or gate-parked) or they were applied/no-ops at an earlier
  // wait — see the header comment. For a gate park the re-grant happens at
  // park_clock, so everything up to that position is dropped too.
  const TimePs drop_bound = waiting ? slot.seg_start : park_clock;
  TimePs w = wake;
  std::vector<NotifyRec> keep;
  for (const NotifyRec& rec : slot.retained) {
    if (grant_order_less(rec.seg, rec.src, drop_bound, rank)) continue;
    if (waiting && grant_order_less(rec.seg, rec.src, w, rank)) {
      // Serial: the target is kWaiting when this send posts; the wake is
      // lowered to the arrival, but never below the parked clock.
      w = std::min(w, std::max(rec.stamp, park_clock));
    } else {
      keep.push_back(rec);  // serial posts this after the wake-up: it
                            // belongs to a later wait of this rank
    }
  }
  slot.retained.swap(keep);
  return w;
}

void Coordinator::cancel(const std::string& why) {
  std::lock_guard<std::mutex> lk(lock_);
  crash_locked(why);
}

bool Coordinator::cancelled() const {
  return cancelled_.load(std::memory_order_acquire);
}

std::string Coordinator::cancel_reason() const {
  std::lock_guard<std::mutex> lk(lock_);
  return cancel_reason_;
}

void Coordinator::set_diag(DiagSink* diag, TimePs stall_threshold) {
  USW_ASSERT_MSG(stall_threshold >= 0, "negative stall threshold");
  std::lock_guard<std::mutex> lk(lock_);
  USW_ASSERT_MSG(started_ == 0 && running_ < 0, "set_diag after ranks started");
  diag_ = diag;
  stall_threshold_ = stall_threshold;
}

void Coordinator::heartbeat(int rank) {
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  if (par_) {
    atomic_max(progress_mark_, slot.clock.load(std::memory_order_relaxed));
    return;
  }
  std::lock_guard<std::mutex> lk(lock_);
  USW_ASSERT_MSG(slot.state == State::kRunning ||
                     cancelled_.load(std::memory_order_relaxed),
                 "heartbeat requires the grant");
  atomic_max(progress_mark_, slot.clock.load(std::memory_order_relaxed));
}

void Coordinator::crash_locked(const std::string& why) {
  if (cancelled_.load(std::memory_order_relaxed)) return;
  cancel_reason_ = why;
  cancelled_.store(true, std::memory_order_release);
  running_ = -1;
  // Snapshot + dump BEFORE waking anyone: parked ranks cannot unwind (and
  // destroy the state diagnostic providers point at) until the cv fires.
  if (diag_ != nullptr) {
    std::vector<RankStatus> status;
    status.reserve(ranks_.size());
    for (int r = 0; r < size(); ++r) {
      const RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
      char st = '?';
      switch (slot.state) {
        case State::kUnstarted: st = 'u'; break;
        case State::kReady: st = 'r'; break;
        case State::kRunning: st = 'R'; break;
        case State::kWaiting: st = 'w'; break;
        case State::kFinished: st = 'f'; break;
      }
      status.push_back(RankStatus{r, st, slot.clock.load(std::memory_order_relaxed),
                                  slot.wake});
    }
    diag_->on_crash(why, status);
  }
  for (auto& slot : ranks_) slot.cv.notify_all();
}

void Coordinator::set_schedule(schedpt::ScheduleController* schedule,
                               TimePs lookahead) {
  USW_ASSERT_MSG(lookahead >= 0, "negative lookahead");
  std::lock_guard<std::mutex> lk(lock_);
  USW_ASSERT_MSG(started_ == 0 && running_ < 0,
                 "set_schedule after ranks started");
  schedule_ = schedule;
  lookahead_ = lookahead;
  // Fuzz/record/replay decisions form one globally ordered log; only a
  // total order over grants reproduces it. Degenerate to serial granting.
  if (schedule != nullptr) par_ = false;
}

Coordinator::MinScan Coordinator::min_eligibility_locked() const {
  MinScan scan;
  for (int r = 0; r < size(); ++r) {
    const RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
    switch (slot.state) {
      case State::kReady:
        scan.any_unfinished = true;
        if (slot.clock.load(std::memory_order_relaxed) < scan.best_time) {
          scan.best = r;
          scan.best_time = slot.clock.load(std::memory_order_relaxed);
        }
        break;
      case State::kWaiting:
        scan.any_unfinished = true;
        if (slot.wake != kNever && slot.wake < scan.best_time) {
          scan.best = r;
          scan.best_time = slot.wake;
        }
        break;
      case State::kUnstarted:
      case State::kRunning:
        USW_ASSERT_MSG(false, "eligibility scan with a running or unstarted rank");
        break;
      case State::kFinished:
        break;
    }
  }
  return scan;
}

std::string Coordinator::deadlock_message_locked() const {
  // Every unfinished rank is waiting on kNever: no event can ever fire.
  std::ostringstream os;
  os << "virtual-time deadlock:";
  for (int r = 0; r < size(); ++r) {
    const RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
    if (slot.state == State::kWaiting)
      os << " rank " << r
         << " waiting at t=" << slot.clock.load(std::memory_order_relaxed);
  }
  return os.str();
}

bool Coordinator::watchdog_trips_locked(int best, TimePs best_time) {
  // Hang watchdog: granting at best_time would mean no timestep has
  // completed for more than stall_threshold_ of virtual time — some rank
  // is spinning/retrying without making application progress.
  const TimePs mark = progress_mark_.load(std::memory_order_relaxed);
  if (diag_ != nullptr && stall_threshold_ > 0 && best_time != kNever &&
      best_time - mark > stall_threshold_) {
    std::ostringstream os;
    os << "hang watchdog: no step completed between t=" << mark
       << " and t=" << best_time << " ps (threshold " << stall_threshold_
       << " ps); stalled at rank " << best;
    crash_locked(os.str());
    return true;
  }
  return false;
}

void Coordinator::pick_next_locked() {
  USW_ASSERT(running_ < 0);
  if (cancelled_.load(std::memory_order_relaxed)) return;
  // Hold everyone at the starting line until every rank thread has
  // registered; otherwise an early rank could race ahead of a rank that is
  // still at virtual time zero, breaking the min-clock invariant.
  for (const RankSlot& slot : ranks_)
    if (slot.state == State::kUnstarted) return;
  const MinScan scan = min_eligibility_locked();
  int best = scan.best;
  if (best < 0) {
    if (!scan.any_unfinished) return;  // everyone done
    crash_locked(deadlock_message_locked());
    return;
  }
  if (watchdog_trips_locked(best, scan.best_time)) return;
  int n_candidates = 1;
  if (schedule_ != nullptr) {
    // Schedule point: any rank whose effective time is STRICTLY inside
    // [best_time, best_time + lookahead_) may legally run next (see
    // set_schedule for the causality argument). Candidate 0 is the
    // canonical min-clock/min-rank choice so default == index 0.
    std::vector<int> candidates;
    candidates.push_back(best);
    for (int r = 0; r < size(); ++r) {
      if (r == best) continue;
      const RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
      TimePs eff = kNever;
      if (slot.state == State::kReady)
        eff = slot.clock.load(std::memory_order_relaxed);
      else if (slot.state == State::kWaiting && slot.wake != kNever)
        eff = slot.wake;
      if (eff != kNever && eff - scan.best_time < lookahead_)
        candidates.push_back(r);
    }
    n_candidates = static_cast<int>(candidates.size());
    const int pick =
        schedule_->choose(schedpt::PointKind::kRankPick, best, n_candidates);
    best = candidates[static_cast<std::size_t>(pick)];
  }
  RankSlot& chosen = ranks_[static_cast<std::size_t>(best)];
  if (chosen.state == State::kWaiting) {
    chosen.clock.store(
        std::max(chosen.clock.load(std::memory_order_relaxed), chosen.wake),
        std::memory_order_relaxed);
    chosen.wake = kNever;
  }
  chosen.state = State::kRunning;
  running_ = best;
  if (diag_ != nullptr)
    diag_->on_rank_pick(best, n_candidates,
                        chosen.clock.load(std::memory_order_relaxed));
  chosen.cv.notify_all();
}

void Coordinator::open_window_locked() {
  USW_ASSERT(active_ == 0);
  if (cancelled_.load(std::memory_order_relaxed)) return;
  grant_queue_.clear();
  grant_next_ = 0;
  // Resolve the notify records posted since the last barrier. Every rank
  // is parked, so the serial grant-order rule (resolve_notifies) can be
  // applied authoritatively: waiters may have their wake lowered, gate
  // parks drop everything up to their re-grant, and records positioned
  // after a rank's wake stay retained for its next wait.
  for (int r = 0; r < size(); ++r) {
    RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
    switch (slot.state) {
      case State::kWaiting: {
        const TimePs clock = slot.clock.load(std::memory_order_relaxed);
        slot.wake = resolve_notifies(r, slot, clock, slot.wake, true);
        // Scan-derived wakes are recomputed here, where every push of the
        // closed window is mutex-ordered before us: an in-window scan can
        // race a concurrent sender whose serial position precedes it, and
        // the notify fold above intentionally drops that class of record
        // (see the 3-arg wait_until). Clamped to the park clock — serial
        // would spin at the clock, never park below it.
        if (slot.wake_fn != nullptr)
          slot.wake =
              std::min(slot.wake, std::max((*slot.wake_fn)(), clock));
        break;
      }
      case State::kReady:
        resolve_notifies(r, slot,
                         slot.clock.load(std::memory_order_relaxed), kNever,
                         false);
        break;
      case State::kFinished:
        // Serial drops notifies to finished ranks.
        if (slot.has_notify.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> nlk(slot.notify_mu);
          slot.pending.clear();
          slot.has_notify.store(false, std::memory_order_relaxed);
        }
        slot.retained.clear();
        break;
      case State::kUnstarted:
      case State::kRunning:
        break;
    }
  }
  const MinScan scan = min_eligibility_locked();
  if (scan.best < 0) {
    if (!scan.any_unfinished) return;  // everyone done
    crash_locked(deadlock_message_locked());
    return;
  }
  if (watchdog_trips_locked(scan.best, scan.best_time)) return;
  // Window [best_time, best_time + window_): strictness keeps it causal
  // (a message sent at S >= best_time arrives at S + window_ >= the window
  // end, so no in-window rank can observe another's sends).
  const TimePs end = scan.best_time > kNever - window_
                         ? kNever
                         : scan.best_time + window_;
  window_end_.store(end, std::memory_order_relaxed);
  struct Grant {
    TimePs time;
    int rank;
  };
  std::vector<Grant> grants;
  for (int r = 0; r < size(); ++r) {
    const RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
    TimePs eff = kNever;
    if (slot.state == State::kReady)
      eff = slot.clock.load(std::memory_order_relaxed);
    else if (slot.state == State::kWaiting && slot.wake != kNever)
      eff = slot.wake;
    if (eff != kNever && (r == scan.best || eff - scan.best_time < window_))
      grants.push_back(Grant{eff, r});
  }
  // Grant in serial order (time, then rank id) so the diagnostic pick ring
  // and the capped rollout follow the same sequence the token would.
  std::sort(grants.begin(), grants.end(), [](const Grant& a, const Grant& b) {
    return a.time != b.time ? a.time < b.time : a.rank < b.rank;
  });
  grant_queue_.reserve(grants.size());
  for (const Grant& g : grants) grant_queue_.push_back(g.rank);
  while (grant_next_ < grant_queue_.size() && active_ < max_concurrent_)
    grant_locked(grant_queue_[grant_next_++]);
}

void Coordinator::grant_locked(int rank) {
  RankSlot& slot = ranks_[static_cast<std::size_t>(rank)];
  USW_ASSERT_MSG(slot.state == State::kReady || slot.state == State::kWaiting,
                 "granting a rank that is not parked");
  if (slot.state == State::kWaiting) {
    slot.clock.store(
        std::max(slot.clock.load(std::memory_order_relaxed), slot.wake),
        std::memory_order_relaxed);
    slot.wake = kNever;
  }
  // The grant starts a new serial segment at the rank's (possibly raised)
  // clock — the eligibility the serial token would have granted at.
  slot.seg_start = slot.clock.load(std::memory_order_relaxed);
  slot.state = State::kRunning;
  ++active_;
  if (diag_ != nullptr)
    diag_->on_rank_pick(rank, 1, slot.clock.load(std::memory_order_relaxed));
  slot.cv.notify_all();
}

void Coordinator::release_locked() {
  USW_ASSERT(active_ > 0);
  --active_;
  if (grant_next_ < grant_queue_.size()) {
    grant_locked(grant_queue_[grant_next_++]);
  } else if (active_ == 0) {
    open_window_locked();
  }
}

void Coordinator::park_and_block(int rank, State state, TimePs wake,
                                 const std::function<TimePs()>* wake_fn) {
  std::unique_lock<std::mutex> lk(lock_);
  if (cancelled_.load(std::memory_order_relaxed)) throw Cancelled(cancel_reason_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kRunning, "parking a rank without a grant");
  slot.state = state;
  slot.wake = wake;
  slot.wake_fn = wake_fn;
  release_locked();
  try {
    block_until_running_locked(lk, rank);
  } catch (...) {
    slot.wake_fn = nullptr;  // wake_fn points into this (unwinding) frame
    throw;
  }
  slot.wake_fn = nullptr;
}

void Coordinator::block_until_running_locked(std::unique_lock<std::mutex>& lk, int rank) {
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  slot.cv.wait(lk, [this, &slot] {
    return cancelled_.load(std::memory_order_relaxed) ||
           slot.state == State::kRunning;
  });
  if (cancelled_.load(std::memory_order_relaxed)) throw Cancelled(cancel_reason_);
}

void run_ranks(int nranks, const std::function<void(Coordinator&, int)>& body) {
  run_ranks(nranks, body, nullptr, 0);
}

void run_ranks(int nranks, const std::function<void(Coordinator&, int)>& body,
               schedpt::ScheduleController* schedule, TimePs lookahead,
               DiagSink* diag, TimePs stall_threshold,
               const CoordinatorSpec& coord_spec) {
  Coordinator coord(nranks, coord_spec, lookahead);
  if (schedule != nullptr) coord.set_schedule(schedule, lookahead);
  if (diag != nullptr) coord.set_diag(diag, stall_threshold);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&coord, &body, &errors, r] {
      try {
        coord.start(r);
        body(coord, r);
        coord.finish(r);
      } catch (const Cancelled&) {
        // Another rank failed (or deadlock); its error is reported below.
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        coord.cancel("rank " + std::to_string(r) + " threw: " + e.what());
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        coord.cancel("rank " + std::to_string(r) + " threw an exception");
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
  // A deadlock (or watchdog stall) cancels every rank with sim::Cancelled,
  // which the lambda swallows; surface it as a StateError here.
  if (coord.cancelled())
    throw StateError("simulation did not complete (" + coord.cancel_reason() + ")");
}

}  // namespace usw::sim
