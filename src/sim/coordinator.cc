#include "sim/coordinator.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "schedpt/schedule.h"
#include "support/log.h"

namespace usw::sim {

Coordinator::Coordinator(int nranks) : ranks_(static_cast<std::size_t>(nranks)) {
  USW_ASSERT_MSG(nranks > 0, "coordinator needs at least one rank");
}

void Coordinator::start(int rank) {
  std::unique_lock<std::mutex> lk(lock_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kUnstarted, "rank started twice");
  slot.state = State::kReady;
  slot.clock = 0;
  if (running_ < 0) pick_next_locked();
  block_until_running_locked(lk, rank);
}

void Coordinator::finish(int rank) {
  std::unique_lock<std::mutex> lk(lock_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kRunning || cancelled_,
                 "finish requires the token");
  slot.state = State::kFinished;
  if (running_ == rank) {
    running_ = -1;
    pick_next_locked();
  }
}

TimePs Coordinator::now(int rank) const {
  std::lock_guard<std::mutex> lk(lock_);
  return ranks_.at(static_cast<std::size_t>(rank)).clock;
}

void Coordinator::advance(int rank, TimePs dt) {
  USW_ASSERT_MSG(dt >= 0, "cannot advance virtual time backwards");
  std::lock_guard<std::mutex> lk(lock_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kRunning, "advance requires the token");
  slot.clock += dt;
}

void Coordinator::gate(int rank) {
  std::unique_lock<std::mutex> lk(lock_);
  if (cancelled_) throw Cancelled(cancel_reason_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kRunning, "gate requires the token");
  slot.state = State::kReady;
  running_ = -1;
  pick_next_locked();
  block_until_running_locked(lk, rank);
}

void Coordinator::wait_until(int rank, TimePs wake) {
  std::unique_lock<std::mutex> lk(lock_);
  if (cancelled_) throw Cancelled(cancel_reason_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kRunning, "wait_until requires the token");
  if (wake != kNever && wake <= slot.clock) return;  // already past the event
  slot.state = State::kWaiting;
  slot.wake = wake;
  running_ = -1;
  pick_next_locked();
  block_until_running_locked(lk, rank);
}

void Coordinator::notify(int rank, TimePs stamp) {
  std::lock_guard<std::mutex> lk(lock_);
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  if (slot.state != State::kWaiting) return;  // will observe it when it polls
  const TimePs effective = std::max(stamp, slot.clock);
  slot.wake = std::min(slot.wake, effective);
}

void Coordinator::cancel(const std::string& why) {
  std::lock_guard<std::mutex> lk(lock_);
  crash_locked(why);
}

bool Coordinator::cancelled() const {
  std::lock_guard<std::mutex> lk(lock_);
  return cancelled_;
}

std::string Coordinator::cancel_reason() const {
  std::lock_guard<std::mutex> lk(lock_);
  return cancel_reason_;
}

void Coordinator::set_diag(DiagSink* diag, TimePs stall_threshold) {
  USW_ASSERT_MSG(stall_threshold >= 0, "negative stall threshold");
  std::lock_guard<std::mutex> lk(lock_);
  diag_ = diag;
  stall_threshold_ = stall_threshold;
}

void Coordinator::heartbeat(int rank) {
  std::lock_guard<std::mutex> lk(lock_);
  const RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  USW_ASSERT_MSG(slot.state == State::kRunning || cancelled_,
                 "heartbeat requires the token");
  progress_mark_ = std::max(progress_mark_, slot.clock);
}

void Coordinator::crash_locked(const std::string& why) {
  if (cancelled_) return;
  cancelled_ = true;
  cancel_reason_ = why;
  running_ = -1;
  // Snapshot + dump BEFORE waking anyone: parked ranks cannot unwind (and
  // destroy the state diagnostic providers point at) until the cv fires.
  if (diag_ != nullptr) {
    std::vector<RankStatus> status;
    status.reserve(ranks_.size());
    for (int r = 0; r < size(); ++r) {
      const RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
      char st = '?';
      switch (slot.state) {
        case State::kUnstarted: st = 'u'; break;
        case State::kReady: st = 'r'; break;
        case State::kRunning: st = 'R'; break;
        case State::kWaiting: st = 'w'; break;
        case State::kFinished: st = 'f'; break;
      }
      status.push_back(RankStatus{r, st, slot.clock, slot.wake});
    }
    diag_->on_crash(why, status);
  }
  for (auto& slot : ranks_) slot.cv.notify_all();
}

void Coordinator::set_schedule(schedpt::ScheduleController* schedule,
                               TimePs lookahead) {
  USW_ASSERT_MSG(lookahead >= 0, "negative lookahead");
  std::lock_guard<std::mutex> lk(lock_);
  schedule_ = schedule;
  lookahead_ = lookahead;
}

void Coordinator::pick_next_locked() {
  USW_ASSERT(running_ < 0);
  if (cancelled_) return;
  // Hold everyone at the starting line until every rank thread has
  // registered; otherwise an early rank could race ahead of a rank that is
  // still at virtual time zero, breaking the min-clock invariant.
  for (const RankSlot& slot : ranks_)
    if (slot.state == State::kUnstarted) return;
  int best = -1;
  TimePs best_time = kNever;
  bool any_unfinished = false;
  for (int r = 0; r < size(); ++r) {
    const RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
    switch (slot.state) {
      case State::kReady:
        any_unfinished = true;
        if (slot.clock < best_time) {
          best = r;
          best_time = slot.clock;
        }
        break;
      case State::kWaiting:
        any_unfinished = true;
        if (slot.wake != kNever && slot.wake < best_time) {
          best = r;
          best_time = slot.wake;
        }
        break;
      case State::kUnstarted:
      case State::kRunning:
        USW_ASSERT_MSG(false, "pick_next with a running or unstarted rank");
        break;
      case State::kFinished:
        break;
    }
  }
  if (best < 0) {
    if (!any_unfinished) return;  // everyone done
    // Every unfinished rank is waiting on kNever: no event can ever fire.
    std::ostringstream os;
    os << "virtual-time deadlock:";
    for (int r = 0; r < size(); ++r) {
      const RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
      if (slot.state == State::kWaiting)
        os << " rank " << r << " waiting at t=" << slot.clock;
    }
    crash_locked(os.str());
    return;
  }
  // Hang watchdog: granting the token at best_time would mean no timestep
  // has completed for more than stall_threshold_ of virtual time — some
  // rank is spinning/retrying without making application progress.
  if (diag_ != nullptr && stall_threshold_ > 0 &&
      best_time != kNever && best_time - progress_mark_ > stall_threshold_) {
    std::ostringstream os;
    os << "hang watchdog: no step completed between t=" << progress_mark_
       << " and t=" << best_time << " ps (threshold " << stall_threshold_
       << " ps); stalled at rank " << best;
    crash_locked(os.str());
    return;
  }
  int n_candidates = 1;
  if (schedule_ != nullptr) {
    // Schedule point: any rank whose effective time is STRICTLY inside
    // [best_time, best_time + lookahead_) may legally run next (see
    // set_schedule for the causality argument). Candidate 0 is the
    // canonical min-clock/min-rank choice so default == index 0.
    std::vector<int> candidates;
    candidates.push_back(best);
    for (int r = 0; r < size(); ++r) {
      if (r == best) continue;
      const RankSlot& slot = ranks_[static_cast<std::size_t>(r)];
      TimePs eff = kNever;
      if (slot.state == State::kReady) eff = slot.clock;
      else if (slot.state == State::kWaiting && slot.wake != kNever)
        eff = slot.wake;
      if (eff != kNever && eff - best_time < lookahead_)
        candidates.push_back(r);
    }
    n_candidates = static_cast<int>(candidates.size());
    const int pick =
        schedule_->choose(schedpt::PointKind::kRankPick, best, n_candidates);
    best = candidates[static_cast<std::size_t>(pick)];
  }
  RankSlot& chosen = ranks_[static_cast<std::size_t>(best)];
  if (chosen.state == State::kWaiting) {
    chosen.clock = std::max(chosen.clock, chosen.wake);
    chosen.wake = kNever;
  }
  chosen.state = State::kRunning;
  running_ = best;
  if (diag_ != nullptr) diag_->on_rank_pick(best, n_candidates, chosen.clock);
  chosen.cv.notify_all();
}

void Coordinator::block_until_running_locked(std::unique_lock<std::mutex>& lk, int rank) {
  RankSlot& slot = ranks_.at(static_cast<std::size_t>(rank));
  slot.cv.wait(lk, [this, &slot] {
    return cancelled_ || slot.state == State::kRunning;
  });
  if (cancelled_) throw Cancelled(cancel_reason_);
}

void run_ranks(int nranks, const std::function<void(Coordinator&, int)>& body) {
  run_ranks(nranks, body, nullptr, 0);
}

void run_ranks(int nranks, const std::function<void(Coordinator&, int)>& body,
               schedpt::ScheduleController* schedule, TimePs lookahead,
               DiagSink* diag, TimePs stall_threshold) {
  Coordinator coord(nranks);
  if (schedule != nullptr) coord.set_schedule(schedule, lookahead);
  if (diag != nullptr) coord.set_diag(diag, stall_threshold);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&coord, &body, &errors, r] {
      try {
        coord.start(r);
        body(coord, r);
        coord.finish(r);
      } catch (const Cancelled&) {
        // Another rank failed (or deadlock); its error is reported below.
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        coord.cancel("rank " + std::to_string(r) + " threw: " + e.what());
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        coord.cancel("rank " + std::to_string(r) + " threw an exception");
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
  // A deadlock (or watchdog stall) cancels every rank with sim::Cancelled,
  // which the lambda swallows; surface it as a StateError here.
  if (coord.cancelled())
    throw StateError("simulation did not complete (" + coord.cancel_reason() + ")");
}

}  // namespace usw::sim
