#include "sim/trace.h"

#include <sstream>

#include "support/error.h"

namespace usw::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskBegin: return "task_begin";
    case EventKind::kTaskEnd: return "task_end";
    case EventKind::kOffloadBegin: return "offload_begin";
    case EventKind::kOffloadEnd: return "offload_end";
    case EventKind::kKernelBegin: return "kernel_begin";
    case EventKind::kKernelEnd: return "kernel_end";
    case EventKind::kSendPosted: return "send_posted";
    case EventKind::kSendDone: return "send_done";
    case EventKind::kRecvPosted: return "recv_posted";
    case EventKind::kRecvDone: return "recv_done";
    case EventKind::kReduceBegin: return "reduce_begin";
    case EventKind::kReduceEnd: return "reduce_end";
    case EventKind::kWaitBegin: return "wait_begin";
    case EventKind::kWaitEnd: return "wait_end";
  }
  return "unknown";
}

std::vector<TraceEvent> Trace::filter(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

TimePs Trace::total_between(EventKind begin, EventKind end) const {
  TimePs total = 0;
  TimePs open = -1;
  int depth = 0;
  for (const auto& e : events_) {
    if (e.kind == begin) {
      if (depth == 0) open = e.time;
      ++depth;
    } else if (e.kind == end) {
      USW_ASSERT_MSG(depth > 0, "trace end event without matching begin");
      --depth;
      if (depth == 0) total += e.time - open;
    }
  }
  USW_ASSERT_MSG(depth == 0, "trace begin event without matching end");
  return total;
}

std::string Trace::dump() const {
  std::ostringstream os;
  for (const auto& e : events_)
    os << format_duration(e.time) << "  " << to_string(e.kind) << "  " << e.label << '\n';
  return os.str();
}

}  // namespace usw::sim
