#include "sim/trace.h"

#include <algorithm>
#include <sstream>

namespace usw::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskBegin: return "task_begin";
    case EventKind::kTaskEnd: return "task_end";
    case EventKind::kOffloadBegin: return "offload_begin";
    case EventKind::kOffloadEnd: return "offload_end";
    case EventKind::kKernelBegin: return "kernel_begin";
    case EventKind::kKernelEnd: return "kernel_end";
    case EventKind::kSendPosted: return "send_posted";
    case EventKind::kSendDone: return "send_done";
    case EventKind::kRecvPosted: return "recv_posted";
    case EventKind::kRecvDone: return "recv_done";
    case EventKind::kReduceBegin: return "reduce_begin";
    case EventKind::kReduceEnd: return "reduce_end";
    case EventKind::kWaitBegin: return "wait_begin";
    case EventKind::kWaitEnd: return "wait_end";
    case EventKind::kFaultBegin: return "fault_begin";
    case EventKind::kFaultEnd: return "fault_end";
  }
  return "unknown";
}

std::vector<TraceEvent> Trace::filter(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

TimePs Trace::total_between(EventKind begin, EventKind end) const {
  // Union of the covered intervals via a sorted sweep: +1 marks at begin
  // stamps, -1 at end stamps. The raw event sequence is not reliable for
  // stack pairing — kernel completions are recorded ahead of time and
  // multiple spans of one kind can be in flight at once.
  std::vector<std::pair<TimePs, int>> marks;
  TimePs last = 0;
  for (const auto& e : events_) {
    last = std::max(last, e.time);
    if (e.kind == begin) marks.emplace_back(e.time, +1);
    else if (e.kind == end) marks.emplace_back(e.time, -1);
  }
  // Begins sort before ends at equal stamps so zero-length spans and
  // back-to-back pairs never drive the depth negative spuriously.
  std::sort(marks.begin(), marks.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second > b.second;
            });
  TimePs total = 0;
  TimePs open = 0;
  int depth = 0;
  for (const auto& [time, delta] : marks) {
    if (delta > 0) {
      if (depth == 0) open = time;
      ++depth;
    } else if (depth > 0) {  // unmatched ends are ignored
      --depth;
      if (depth == 0) total += time - open;
    }
  }
  if (depth > 0) total += std::max<TimePs>(0, last - open);
  return total;
}

std::string Trace::dump() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << format_duration(e.time) << "  " << to_string(e.kind) << "  "
       << e.label;
    const EventIds& i = e.ids;
    os << "  [s" << i.step;
    if (i.task >= 0) os << " t" << i.task;
    if (i.patch >= 0) os << " p" << i.patch;
    if (i.peer >= 0) os << " peer" << i.peer;
    if (i.tag >= 0) os << " tag" << i.tag;
    if (i.group >= 0) os << " g" << i.group;
    if (i.bytes > 0) os << ' ' << i.bytes << 'B';
    os << "]\n";
  }
  return os.str();
}

}  // namespace usw::sim
