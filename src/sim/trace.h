#pragma once

// Per-rank event traces of the simulated execution.
//
// Schedulers record begin/end events for kernels, MPI operations, and
// scheduling decisions. Tests use the trace to verify *behaviour* — e.g.
// that the asynchronous scheduler really does progress communication while
// a CPE kernel is in flight — and benchmark drivers can dump it for
// inspection. Recording is O(1) per event and disabled by default.

#include <string>
#include <vector>

#include "support/units.h"

namespace usw::sim {

enum class EventKind {
  kTaskBegin,
  kTaskEnd,
  kOffloadBegin,   // kernel handed to the CPE cluster
  kOffloadEnd,     // completion flag observed set
  kKernelBegin,    // CPE cluster starts computing (virtual)
  kKernelEnd,      // CPE cluster done (virtual)
  kSendPosted,
  kSendDone,
  kRecvPosted,
  kRecvDone,
  kReduceBegin,
  kReduceEnd,
  kWaitBegin,
  kWaitEnd,
};

const char* to_string(EventKind kind);

struct TraceEvent {
  TimePs time = 0;
  EventKind kind = EventKind::kTaskBegin;
  std::string label;
};

class Trace {
 public:
  /// Enables recording; off by default so hot paths stay cheap.
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(TimePs time, EventKind kind, std::string label) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{time, kind, std::move(label)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one kind, in time order (events are appended in time order
  /// because each rank's virtual clock is monotone).
  std::vector<TraceEvent> filter(EventKind kind) const;

  /// Total virtual time spent between matching begin/end pairs of the given
  /// kinds (e.g. kKernelBegin/kKernelEnd).
  TimePs total_between(EventKind begin, EventKind end) const;

  /// Renders one line per event, for debugging.
  std::string dump() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace usw::sim
