#pragma once

// Per-rank event traces of the simulated execution.
//
// Schedulers record begin/end events for kernels, MPI operations, and
// scheduling decisions. Tests use the trace to verify *behaviour* — e.g.
// that the asynchronous scheduler really does progress communication while
// a CPE kernel is in flight — and the observability layer (src/obs) pairs
// the events into structured spans for Chrome-trace export, per-step
// metrics, and critical-path analysis. Recording is O(1) per event and
// disabled by default.

#include <string>
#include <vector>

#include "support/units.h"

namespace usw::sim {

enum class EventKind {
  kTaskBegin,
  kTaskEnd,
  kOffloadBegin,   // kernel handed to the CPE cluster
  kOffloadEnd,     // completion flag observed set
  kKernelBegin,    // CPE cluster starts computing (virtual)
  kKernelEnd,      // CPE cluster done (virtual)
  kSendPosted,
  kSendDone,
  kRecvPosted,
  kRecvDone,
  kReduceBegin,
  kReduceEnd,
  kWaitBegin,
  kWaitEnd,
  kFaultBegin,     // injected fault / recovery action (src/fault)
  kFaultEnd,
};

const char* to_string(EventKind kind);

/// Structured identity attached to an event, so exported spans are
/// machine-matchable instead of only carrying a display string. Fields
/// left at their defaults mean "not applicable"; `step` -1 doubles as the
/// initialization timestep, which is how the scheduler labels it.
struct EventIds {
  int step = -1;   ///< timestep (-1 = initialization / unset)
  int task = -1;   ///< detailed-task index in the rank's compiled graph
  int patch = -1;  ///< patch id
  int peer = -1;   ///< remote rank (comm events)
  int tag = -1;    ///< step-independent tag component (comm events)
  int group = -1;  ///< CPE group (offload/kernel events)
  std::uint64_t bytes = 0;  ///< message / staged-data volume
};

struct TraceEvent {
  TimePs time = 0;
  EventKind kind = EventKind::kTaskBegin;
  std::string label;
  EventIds ids;
};

class Trace {
 public:
  /// Enables recording; off by default so hot paths stay cheap.
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(TimePs time, EventKind kind, std::string label,
              EventIds ids = {}) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{time, kind, std::move(label), ids});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one kind, in recorded order.
  std::vector<TraceEvent> filter(EventKind kind) const;

  /// Total virtual time covered by spans of the given begin/end kinds: the
  /// union of the implied intervals. Tolerates interleaved spans (two
  /// in-flight offloads), events recorded out of time order (kernel
  /// completions are stamped at their future completion time), and
  /// unbalanced pairs (an unmatched begin is closed at the last event
  /// time; an unmatched end is ignored).
  TimePs total_between(EventKind begin, EventKind end) const;

  /// Renders one line per event, for debugging.
  std::string dump() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace usw::sim
