#pragma once

// Deterministic discrete-event execution of simulated MPI ranks.
//
// Each simulated rank (one Sunway core-group in this project) runs on its
// own host thread and owns a virtual clock in integer picoseconds. The
// Coordinator enforces the conservative parallel-discrete-event invariant:
// a rank may only *observe* shared state (incoming messages) while it holds
// the execution token, and the token is always granted to the rank with the
// minimum virtual time. Because a message sent at sender time S arrives at
// S + latency > S, every message that can influence a rank at time T has
// physically been enqueued by the time that rank runs at T. Simulated
// timings are therefore exactly reproducible regardless of host scheduling.
//
// Interaction with the real-threads CPE backend (athread::Backend::
// kThreads): CPE worker threads are NOT simulated ranks and never touch
// the Coordinator. They accumulate virtual busy time locally, per CPE, and
// the owning rank folds it into its own clock's frame of reference only
// while holding the token (CpeCluster blocks — in host wall-clock, with
// its virtual clock frozen — until the workers have published). The
// min-clock token invariant therefore holds unchanged: all virtual-time
// mutation still happens on token-holding rank threads.
//
// Rank states:
//   kReady    - wants to run; eligible at its clock.
//   kRunning  - holds the token (at most one rank at a time).
//   kWaiting  - blocked until its wake time; the wake time may be lowered
//               by Coordinator::notify() when a matching message arrives,
//               and may be kNever if the rank has no locally-known event.
//   kFinished - rank function returned.
//
// Deadlock (all unfinished ranks waiting on kNever) is detected and turns
// into a StateError on every participating rank, so tests can assert on it.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/units.h"

namespace usw::schedpt {
class ScheduleController;
}  // namespace usw::schedpt

namespace usw::sim {

/// Sentinel wake time: "no locally known wake event".
inline constexpr TimePs kNever = std::numeric_limits<TimePs>::max();

/// Thrown inside rank bodies when the simulation is cancelled (another rank
/// threw, or deadlock was detected).
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& why) : Error("simulation cancelled: " + why) {}
};

/// Point-in-time view of one rank for a diagnostic snapshot. `state` is a
/// single letter: 'u' unstarted, 'r' ready, 'R' running, 'w' waiting,
/// 'f' finished. `wake` is kNever when the rank has no locally-known event.
struct RankStatus {
  int rank = -1;
  char state = '?';
  TimePs clock = 0;
  TimePs wake = kNever;
};

/// Diagnostic sink wired into the Coordinator (implemented by obs::DiagHub;
/// declared here so sim does not depend on obs). Both callbacks run with
/// the coordinator lock held:
///  - on_rank_pick: a token grant was decided; cheap, called per grant.
///  - on_crash: the run is being cancelled (deadlock, watchdog stall, or an
///    explicit cancel). Called exactly once, BEFORE parked ranks are woken,
///    so their per-rank state is frozen and safe to snapshot — except ranks
///    whose status letter is 'R': a cancel raised by a throwing rank can
///    leave another rank mid-execution, so implementations must not touch
///    per-rank state of running ranks. Implementations must never call back
///    into the Coordinator (self-deadlock on the held lock).
class DiagSink {
 public:
  virtual ~DiagSink() = default;
  virtual void on_rank_pick(int rank, int candidates, TimePs time) = 0;
  virtual void on_crash(const std::string& reason,
                        const std::vector<RankStatus>& ranks) = 0;
};

class Coordinator {
 public:
  explicit Coordinator(int nranks);

  int size() const { return static_cast<int>(ranks_.size()); }

  /// Registers the calling thread as `rank` and blocks until it is granted
  /// the token for the first time.
  void start(int rank);

  /// Marks `rank` finished and hands the token to the next eligible rank.
  void finish(int rank);

  /// Current virtual time of `rank`.
  TimePs now(int rank) const;

  /// Adds local work time. Only legal while `rank` holds the token.
  void advance(int rank, TimePs dt);

  /// Releases the token and blocks until `rank` again has the minimum
  /// clock. Must be called before observing incoming messages.
  void gate(int rank);

  /// Blocks until virtual time `wake` (a locally known future event such as
  /// an offloaded kernel completing), or earlier if notify() reports an
  /// external event first. On return the rank holds the token and its clock
  /// equals the wake time that fired. `wake == kNever` blocks purely on
  /// external notification.
  void wait_until(int rank, TimePs wake);

  /// Reports an external event for `rank` (e.g. message arrival) stamped at
  /// virtual time `stamp`. Callable from any rank holding the token.
  void notify(int rank, TimePs stamp);

  /// Cancels the simulation; all blocked ranks throw Cancelled.
  void cancel(const std::string& why);

  bool cancelled() const;

  /// Why the run was cancelled ("" if it was not).
  std::string cancel_reason() const;

  /// Installs a diagnostic sink (see DiagSink). `stall_threshold > 0` also
  /// arms the hang watchdog: if the next token grant would advance virtual
  /// time more than `stall_threshold` past the last heartbeat() mark, the
  /// run is cancelled with a "hang watchdog" reason and the sink's
  /// on_crash fires. 0 disables the watchdog (the sink still gets crash
  /// dumps from deadlocks and explicit cancels).
  void set_diag(DiagSink* diag, TimePs stall_threshold);

  /// Marks application-level progress (a completed timestep) at `rank`'s
  /// current clock. The watchdog measures stall as virtual time elapsed
  /// since the newest mark. Requires the token.
  void heartbeat(int rank);

  /// Installs a schedule controller for the kRankPick point. When set, the
  /// token grant may go to any rank whose effective time lies STRICTLY
  /// within `lookahead` of the minimum clock instead of always the minimum.
  /// Strictness is what keeps the perturbation causal: a candidate B with
  /// T_B < T_min + lookahead cannot observe any message an unrun rank A
  /// would send, because that message arrives at >= T_A + lookahead >
  /// T_B. `lookahead` should be the minimum message latency (wire +
  /// software). Null disables (canonical min-clock order).
  void set_schedule(schedpt::ScheduleController* schedule, TimePs lookahead);

 private:
  enum class State : std::uint8_t { kUnstarted, kReady, kRunning, kWaiting, kFinished };

  struct RankSlot {
    State state = State::kUnstarted;
    TimePs clock = 0;
    TimePs wake = kNever;
    std::condition_variable cv;
  };

  /// Picks and signals the next rank to run. Requires lock_ held and no
  /// rank currently running.
  void pick_next_locked();

  /// Blocks the calling rank until it is running (or cancellation).
  void block_until_running_locked(std::unique_lock<std::mutex>& lk, int rank);

  /// Cancels with `why`, fires diag_->on_crash (if any) while every parked
  /// rank is still frozen, then wakes everyone. Requires lock_ held.
  void crash_locked(const std::string& why);

  mutable std::mutex lock_;
  std::vector<RankSlot> ranks_;
  int running_ = -1;
  bool cancelled_ = false;
  std::string cancel_reason_;
  schedpt::ScheduleController* schedule_ = nullptr;
  TimePs lookahead_ = 0;
  DiagSink* diag_ = nullptr;
  TimePs stall_threshold_ = 0;  // 0 = watchdog off
  TimePs progress_mark_ = 0;    // newest heartbeat() clock
};

/// Runs `body` once per rank on `nranks` host threads under a Coordinator.
/// Rethrows the first rank exception after all threads join.
void run_ranks(int nranks, const std::function<void(Coordinator&, int)>& body);

/// As above, with a schedule controller (may be null) deciding the
/// coordinator's kRankPick points within `lookahead` of the minimum clock,
/// and an optional diagnostic sink + hang-watchdog threshold (see
/// Coordinator::set_diag). On cancellation the StateError carries the
/// cancel reason.
void run_ranks(int nranks, const std::function<void(Coordinator&, int)>& body,
               schedpt::ScheduleController* schedule, TimePs lookahead,
               DiagSink* diag = nullptr, TimePs stall_threshold = 0);

}  // namespace usw::sim
