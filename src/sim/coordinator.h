#pragma once

// Deterministic discrete-event execution of simulated MPI ranks.
//
// Each simulated rank (one Sunway core-group in this project) runs on its
// own host thread and owns a virtual clock in integer picoseconds. The
// Coordinator enforces the conservative parallel-discrete-event invariant:
// a rank may only *observe* shared state (incoming messages) while it has
// been granted execution, and grants never violate causality. Because a
// message sent at sender time S arrives at S + latency > S, every message
// that can influence a rank at time T has physically been enqueued by the
// time that rank runs at T. Simulated timings are therefore exactly
// reproducible regardless of host scheduling.
//
// Two execution modes (CoordinatorSpec):
//
//   kSerial   - the classic token model: at most one rank runs at a time,
//               always the one with the minimum virtual time (ties broken
//               by lowest rank id).
//
//   kParallel - conservative windowed PDES. Let T be the minimum
//               eligibility over all runnable ranks and L the lookahead
//               (the network's minimum end-to-end message latency,
//               net_latency + mpi_sw_latency — the same causal window the
//               kRankPick schedule point uses). Every rank whose
//               eligibility lies strictly inside [T, T + L) is granted
//               concurrently; each runs until its clock reaches the window
//               end, then parks; when all grants have parked the next
//               window opens. Causality: a message sent inside the window
//               at time S >= T arrives at S + L >= T + L, i.e. at or after
//               the window end, so no in-window rank can observe another
//               in-window rank's sends. All cross-rank observation
//               happens at times < window end, against mailbox state that
//               was complete when the window opened. Virtual times,
//               matching order, numerics, archives and metrics are
//               therefore BIT-IDENTICAL to kSerial; only host wall-clock
//               changes.
//
// Notify equivalence (the subtle part). Serial notify() applies a message
// arrival to the target's wake ONLY if the target is kWaiting at the
// moment the sender posts — otherwise it is dropped (the target re-reads
// the mailbox itself when it next waits). That moment is defined by the
// serial grant order, which is nondecreasing in (eligibility, rank id):
// the token always goes to the minimum, and a parking rank's next
// eligibility never falls below its grant time. A send therefore executes
// at serial-order position (S, sender) where S is the sender's SEGMENT
// START — its clock at the last grant/gate/wait boundary before the send —
// and the serial decision is:
//
//   dropped   if (S, sender) < (E, target)      [target still running its
//                                                pre-park segment, or in an
//                                                earlier, already-resolved
//                                                interval]
//   applied   if (E, target) < (S, sender) < (W, target)
//                  wake = min(wake, max(stamp, clock_at_park))
//   deferred  if (S, sender) > (W, target)      [lands on a later wait]
//
// where E is the target's segment start before its park and W its
// (progressively lowered) effective wake. The parallel engine reproduces
// this exactly: each rank tracks its segment start, notify() records
// (S, sender, stamp) into the target's pending list, and the records are
// resolved with the rule above — sorted by (S, sender) — at the target's
// own wait calls and at every window barrier. Records that would land in
// an already-executed interval are provably no-ops (their stamp is at
// least S + window, past that interval's wake), so host-side delivery
// timing cannot change any outcome.
//
// The parallel mode silently degenerates to serial granting (window width
// 0 still grants exactly the minimum rank) whenever a schedule controller
// is installed: fuzz/record/replay decisions form one globally ordered
// log, which only a total order over grants can reproduce.
//
// Interaction with the real-threads CPE backend (athread::Backend::
// kThreads): CPE worker threads are NOT simulated ranks and never touch
// the Coordinator. They accumulate virtual busy time locally, per CPE, and
// the owning rank folds it into its own clock's frame of reference only
// while it is granted (CpeCluster blocks — in host wall-clock, with its
// virtual clock frozen — until the workers have published). The
// conservative invariant therefore holds unchanged: all virtual-time
// mutation still happens on granted rank threads.
//
// Rank-id grant contract (relied on by the comm progress thread): grants,
// gates, waits and clocks are keyed on the integer rank id, never on a
// host thread identity — no API here inspects std::this_thread. A rank may
// therefore be DRIVEN by more than one host thread over its lifetime, as
// long as exactly one of them performs virtual operations for that rank at
// any moment and the handoffs establish happens-before (a mutex). Comm's
// host-side progress thread (--comm-progress=engine under kParallel) uses
// exactly this: while the rank's own thread blocks in wait_all, the
// progress thread takes over the rank's grant, runs the identical
// test/service/wait sequence, and hands back — the virtual-operation
// sequence, and hence every simulated outcome, is unchanged.
//
// Rank states:
//   kReady    - wants to run; eligible at its clock.
//   kRunning  - granted (serial: at most one; parallel: up to the window).
//   kWaiting  - blocked until its wake time; the wake time may be lowered
//               by Coordinator::notify() when a matching message arrives,
//               and may be kNever if the rank has no locally-known event.
//   kFinished - rank function returned.
//
// Deadlock (all unfinished ranks waiting on kNever) is detected and turns
// into a StateError on every participating rank, so tests can assert on it.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/units.h"

namespace usw::schedpt {
class ScheduleController;
}  // namespace usw::schedpt

namespace usw::sim {

/// Sentinel wake time: "no locally known wake event".
inline constexpr TimePs kNever = std::numeric_limits<TimePs>::max();

/// Thrown inside rank bodies when the simulation is cancelled (another rank
/// threw, or deadlock was detected).
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& why) : Error("simulation cancelled: " + why) {}
};

/// How the Coordinator grants execution (uswsim --coordinator).
enum class CoordinatorMode : std::uint8_t { kSerial, kParallel };

/// Parsed form of `--coordinator=serial|parallel[:threads=N]`.
struct CoordinatorSpec {
  CoordinatorMode mode = CoordinatorMode::kSerial;
  /// Concurrent-grant cap for kParallel (0 = one per host core). Purely a
  /// host-side throttle: results are identical for every value.
  int max_concurrent = 0;

  bool parallel() const { return mode == CoordinatorMode::kParallel; }

  /// Parses "serial", "parallel", or "parallel:threads=N"; throws
  /// ConfigError on anything else.
  static CoordinatorSpec parse(const std::string& text);
  std::string describe() const;
};

/// Point-in-time view of one rank for a diagnostic snapshot. `state` is a
/// single letter: 'u' unstarted, 'r' ready, 'R' running, 'w' waiting,
/// 'f' finished. `wake` is kNever when the rank has no locally-known event.
struct RankStatus {
  int rank = -1;
  char state = '?';
  TimePs clock = 0;
  TimePs wake = kNever;
};

/// Diagnostic sink wired into the Coordinator (implemented by obs::DiagHub;
/// declared here so sim does not depend on obs). Both callbacks run with
/// the coordinator lock held:
///  - on_rank_pick: an execution grant was decided; cheap, called per grant.
///  - on_crash: the run is being cancelled (deadlock, watchdog stall, or an
///    explicit cancel). Called exactly once, BEFORE parked ranks are woken,
///    so their per-rank state is frozen and safe to snapshot — except ranks
///    whose status letter is 'R': a cancel raised by a throwing rank can
///    leave other ranks mid-execution (in parallel mode, several), so
///    implementations must not touch per-rank state of running ranks.
///    Implementations must never call back into the Coordinator
///    (self-deadlock on the held lock).
class DiagSink {
 public:
  virtual ~DiagSink() = default;
  virtual void on_rank_pick(int rank, int candidates, TimePs time) = 0;
  virtual void on_crash(const std::string& reason,
                        const std::vector<RankStatus>& ranks) = 0;
};

class Coordinator {
 public:
  explicit Coordinator(int nranks);

  /// `window` is the conservative lookahead for CoordinatorMode::kParallel
  /// (ignored for kSerial); a zero window forces serial granting.
  Coordinator(int nranks, const CoordinatorSpec& spec, TimePs window);

  int size() const { return static_cast<int>(ranks_.size()); }

  /// True when windowed-parallel granting is in effect (spec requested it,
  /// the window is positive, and no schedule controller forced a total
  /// grant order).
  bool parallel_active() const { return par_; }

  /// Registers the calling thread as `rank` and blocks until it is granted
  /// execution for the first time.
  void start(int rank);

  /// Marks `rank` finished and releases its grant.
  void finish(int rank);

  /// Current virtual time of `rank`.
  TimePs now(int rank) const;

  /// Adds local work time. Only legal while `rank` is granted.
  void advance(int rank, TimePs dt);

  /// Yields the grant if required and blocks until `rank` may observe
  /// shared state at its current clock. Must be called before observing
  /// incoming messages. In parallel mode this is a no-op while the rank's
  /// clock is still inside the open window.
  void gate(int rank);

  /// Blocks until virtual time `wake` (a locally known future event such as
  /// an offloaded kernel completing), or earlier if notify() reports an
  /// external event first. On return the rank is granted and its clock
  /// equals the wake time that fired. `wake == kNever` blocks purely on
  /// external notification.
  void wait_until(int rank, TimePs wake);

  /// Like wait_until, but for wakes derived from a scan of shared state
  /// (e.g. mailbox arrival stamps): `refresh` recomputes that scan. In
  /// parallel mode a scan made inside a window can miss a concurrent
  /// sender's push whose serial position precedes it (there is no
  /// real-time ordering between in-window segments), and the pending-
  /// notify fold deliberately drops records positioned before the
  /// target's segment on the assumption the scan covered them. The
  /// coordinator therefore re-runs `refresh` at every window barrier
  /// while the rank is parked — all pushes are mutex-ordered by then —
  /// and folds the result into the wake, restoring exactly the serial
  /// scan. `refresh` must not call back into the Coordinator (it runs
  /// under the coordinator lock, on the barrier thread) and must stay
  /// valid until this call returns; the serial path ignores it (its scan
  /// is authoritative by construction).
  void wait_until(int rank, TimePs wake, const std::function<TimePs()>& refresh);

  /// Reports an external event for `rank` (e.g. message arrival) stamped at
  /// virtual time `stamp`. Callable from any granted rank. `src` is the
  /// posting rank; parallel mode requires it (the record's serial-order
  /// position is the sender's segment start — see the header comment), the
  /// serial path ignores it.
  void notify(int rank, TimePs stamp, int src = -1);

  /// Cancels the simulation; all blocked ranks throw Cancelled.
  void cancel(const std::string& why);

  bool cancelled() const;

  /// Why the run was cancelled ("" if it was not).
  std::string cancel_reason() const;

  /// Installs a diagnostic sink (see DiagSink). `stall_threshold > 0` also
  /// arms the hang watchdog: if the next grant would advance virtual
  /// time more than `stall_threshold` past the last heartbeat() mark, the
  /// run is cancelled with a "hang watchdog" reason and the sink's
  /// on_crash fires. 0 disables the watchdog (the sink still gets crash
  /// dumps from deadlocks and explicit cancels). Call before ranks start.
  void set_diag(DiagSink* diag, TimePs stall_threshold);

  /// Marks application-level progress (a completed timestep) at `rank`'s
  /// current clock. The watchdog measures stall as virtual time elapsed
  /// since the newest mark. Requires the grant.
  void heartbeat(int rank);

  /// Installs a schedule controller for the kRankPick point. When set, the
  /// grant may go to any rank whose effective time lies STRICTLY within
  /// `lookahead` of the minimum clock instead of always the minimum.
  /// Strictness is what keeps the perturbation causal: a candidate B with
  /// T_B < T_min + lookahead cannot observe any message an unrun rank A
  /// would send, because that message arrives at >= T_A + lookahead >
  /// T_B. `lookahead` should be the minimum message latency (wire +
  /// software). Null disables (canonical min-clock order). A non-null
  /// controller forces serial granting (its decision log is totally
  /// ordered). Call before ranks start.
  void set_schedule(schedpt::ScheduleController* schedule, TimePs lookahead);

 private:
  enum class State : std::uint8_t { kUnstarted, kReady, kRunning, kWaiting, kFinished };

  /// Parallel mode: one notify() record awaiting serial-order resolution.
  /// `seg` is the SENDER's segment start at post time — the record's
  /// position in the serial grant order (see header comment).
  struct NotifyRec {
    TimePs seg;
    int src;
    TimePs stamp;
  };

  struct RankSlot {
    State state = State::kUnstarted;
    /// Owner-written (lock-free in parallel mode); everyone else reads it
    /// either at a window barrier (mutex-ordered) or for diagnostics.
    std::atomic<TimePs> clock{0};
    TimePs wake = kNever;
    /// Parallel mode: clock at this rank's last grant/gate/wait boundary —
    /// where the serial coordinator would have granted its current segment.
    /// Owner-written while running; grant_locked writes it at handoff.
    TimePs seg_start = 0;
    /// Parallel mode: notify() records not yet resolved. `pending` is the
    /// senders' inbox (guarded by notify_mu, existence hinted by
    /// has_notify); `retained` holds records whose serial position is
    /// beyond this rank's last resolved wait, owner/barrier-accessed only.
    std::mutex notify_mu;
    std::vector<NotifyRec> pending;
    std::atomic<bool> has_notify{false};
    std::vector<NotifyRec> retained;
    /// Parallel mode: authoritative wake recompute for the current
    /// kWaiting park (see the 3-arg wait_until). Points into the parked
    /// caller's frame; set under lock_ at park, cleared at grant. Null
    /// when the park's wake is a fixed local event.
    const std::function<TimePs()>* wake_fn = nullptr;
    std::condition_variable cv;
  };

  /// Serial mode: picks and signals the next rank to run. Requires lock_
  /// held and no rank currently running.
  void pick_next_locked();

  // ---- Parallel (windowed) engine. All *_locked require lock_ held. ----
  /// Opens the next window: folds pending notifies, finds the minimum
  /// eligibility, runs the deadlock/watchdog checks (bit-identical
  /// messages to serial), and grants every rank strictly inside the window
  /// (up to max_concurrent_ at once; the rest drain via release_locked).
  void open_window_locked();
  /// Grants execution to `rank` (parallel mode).
  void grant_locked(int rank);
  /// An active rank stopped running: hand its slot to the next queued
  /// grant, or open the next window when it was the last one.
  void release_locked();
  /// Parks a granted rank in `state` (kReady or kWaiting, with `wake`) and
  /// blocks until the next grant. Parallel-mode slow path of gate() and
  /// wait_until(). `wake_fn` (may be null) is the barrier-time wake
  /// recompute for scan-derived wakes.
  void park_and_block(int rank, State state, TimePs wake,
                      const std::function<TimePs()>* wake_fn = nullptr);
  /// Shared body of the wait_until overloads.
  void wait_until_impl(int rank, TimePs wake,
                       const std::function<TimePs()>* refresh);
  /// Drains `rank`'s notify records and resolves them with the serial
  /// grant-order rule (header comment): records before the current
  /// segment's start are dropped, records before the (progressively
  /// lowered) wake are applied, later records stay retained. `park_clock`
  /// is the clock the rank would park at; `waiting` distinguishes a
  /// wait_until park (wake applies) from a gate park (everything up to the
  /// re-grant at `park_clock` is dropped). Returns the effective wake.
  /// Called by the owning rank thread and, for parked ranks, at the window
  /// barrier — never concurrently.
  TimePs resolve_notifies(int rank, RankSlot& slot, TimePs park_clock,
                          TimePs wake, bool waiting);
  /// Fast-path watchdog guard: true when advancing to `t` would outrun the
  /// stall threshold, in which case the rank must park so the next window
  /// open (which sees the authoritative minimum) decides whether to crash.
  bool would_stall(TimePs t) const {
    return diag_ != nullptr && stall_threshold_ > 0 &&
           t - progress_mark_.load(std::memory_order_relaxed) > stall_threshold_;
  }

  /// Blocks the calling rank until it is running (or cancellation).
  void block_until_running_locked(std::unique_lock<std::mutex>& lk, int rank);

  /// Cancels with `why`, fires diag_->on_crash (if any) while every parked
  /// rank is still frozen, then wakes everyone. Requires lock_ held.
  void crash_locked(const std::string& why);

  /// Scan result shared by pick_next_locked and open_window_locked.
  struct MinScan {
    int best = -1;
    TimePs best_time = kNever;
    bool any_unfinished = false;
  };
  MinScan min_eligibility_locked() const;
  /// Builds the serial-format "virtual-time deadlock: ..." message.
  std::string deadlock_message_locked() const;
  /// True (and crashes) when granting at `best_time` trips the watchdog.
  bool watchdog_trips_locked(int best, TimePs best_time);

  mutable std::mutex lock_;
  std::vector<RankSlot> ranks_;
  int running_ = -1;  ///< serial mode: the granted rank (-1 = none)
  std::atomic<bool> cancelled_{false};
  std::string cancel_reason_;
  schedpt::ScheduleController* schedule_ = nullptr;
  TimePs lookahead_ = 0;
  DiagSink* diag_ = nullptr;
  TimePs stall_threshold_ = 0;  // 0 = watchdog off
  std::atomic<TimePs> progress_mark_{0};  ///< newest heartbeat() clock

  // Parallel mode. `par_` is fixed before any rank thread is released
  // (constructor + set_schedule, both pre-start), so rank threads read it
  // without the lock.
  bool par_ = false;
  int max_concurrent_ = 0;
  TimePs window_ = 0;  ///< lookahead window width
  std::atomic<TimePs> window_end_{0};
  int started_ = 0;  ///< ranks registered (first window opens at size())
  int active_ = 0;   ///< granted-and-not-parked ranks this window
  std::vector<int> grant_queue_;  ///< this window's grants, in serial order
  std::size_t grant_next_ = 0;    ///< first not-yet-granted queue entry
};

/// Runs `body` once per rank on `nranks` host threads under a Coordinator.
/// Rethrows the first rank exception after all threads join.
void run_ranks(int nranks, const std::function<void(Coordinator&, int)>& body);

/// As above, with a schedule controller (may be null) deciding the
/// coordinator's kRankPick points within `lookahead` of the minimum clock,
/// an optional diagnostic sink + hang-watchdog threshold (see
/// Coordinator::set_diag), and a coordinator mode (`lookahead` doubles as
/// the parallel window width). On cancellation the StateError carries the
/// cancel reason.
void run_ranks(int nranks, const std::function<void(Coordinator&, int)>& body,
               schedpt::ScheduleController* schedule, TimePs lookahead,
               DiagSink* diag = nullptr, TimePs stall_threshold = 0,
               const CoordinatorSpec& coord_spec = {});

}  // namespace usw::sim
