#pragma once

// Third application: linear advection of a scalar pulse,
//   u_t + a . grad(u) = 0,   a = const > 0 componentwise,
// discretized with first-order upwind differences and forward Euler. The
// exact solution is the translated initial profile,
//   u(x, t) = u0(x - a t),
// with a smooth Gaussian pulse as u0 and analytic Dirichlet boundaries.
//
// Together with Burgers (advection-diffusion, exponential-heavy) and heat
// (pure diffusion), this covers the third PDE character — pure hyperbolic
// transport — through the identical runtime machinery.

#include "runtime/application.h"

namespace usw::apps::advect {

class AdvectApp : public runtime::Application {
 public:
  struct Config {
    double vx = 0.8, vy = 0.6, vz = 0.4;  ///< advection velocity (positive)
    double pulse_width = 0.1;             ///< Gaussian sigma
    grid::IntVec tile_shape{16, 16, 8};
    double cfl_safety = 0.5;
    /// Work multiplier for patches near the initial pulse (mimicking e.g.
    /// chemistry that iterates harder where the field is active); 1.0 =
    /// uniform cost. Exercises the cost-balanced load balancer.
    double heavy_factor = 1.0;
  };

  AdvectApp() = default;
  explicit AdvectApp(Config config) : config_(config) {}

  std::string name() const override { return "advect3d"; }
  void build_init_graph(task::TaskGraph& graph,
                        const grid::Level& level) const override;
  void build_step_graph(task::TaskGraph& graph,
                        const grid::Level& level) const override;
  double fixed_dt(const grid::Level& level) const override;
  void on_rank_complete(const task::TaskContext& ctx, comm::Comm& comm,
                        std::span<const int> my_patches,
                        std::map<std::string, double>& metrics) const override;

  static const var::VarLabel* q_label();
  static const var::VarLabel* total_label();

  /// Exact solution: the initial Gaussian translated by a*t.
  double exact(double x, double y, double z, double t) const;

  /// True if `patch` lies within 2 sigma of the initial pulse center (the
  /// "heavy" region when heavy_factor > 1).
  bool is_heavy(const grid::Level& level, const grid::Patch& patch) const;

  double patch_cost(const grid::Level& level,
                    const grid::Patch& patch) const override;

  const Config& config() const { return config_; }

 private:
  Config config_{};
};

}  // namespace usw::apps::advect
