#include "apps/advect/advect_app.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kern/simd4.h"
#include "support/error.h"

namespace usw::apps::advect {
namespace {

using kern::FieldView;
using kern::KernelEnv;
using kern::Vec4;

/// First-order upwind cell update (velocities positive => backward
/// differences on all axes, like the Burgers kernel's advection part).
struct UpwindCell {
  double vx, vy, vz;

  inline void operator()(const KernelEnv& env, const FieldView& u0,
                         const FieldView& u1, int i, int j, int k) const {
    const double u = *u0.ptr(i, j, k);
    const double flux = vx * (u - *u0.ptr(i - 1, j, k)) / env.dx +
                        vy * (u - *u0.ptr(i, j - 1, k)) / env.dy +
                        vz * (u - *u0.ptr(i, j, k - 1)) / env.dz;
    *u1.ptr(i, j, k) = u - env.dt * flux;
  }
};

hw::KernelCost upwind_cost() {
  hw::KernelCost c;
  c.flops_per_cell = 11.0;
  c.divs_per_cell = 3.0;
  c.bytes_read_per_cell = 8.0;
  c.bytes_written_per_cell = 8.0;
  return c;
}

kern::KernelVariants make_upwind_kernel(double vx, double vy, double vz,
                                        grid::IntVec tile_shape) {
  kern::KernelVariants kv;
  kv.cost = upwind_cost();
  kv.ghost = 1;
  kv.tile_shape = tile_shape;
  const UpwindCell cell{vx, vy, vz};
  kv.scalar = [cell](const KernelEnv& env, const FieldView& in,
                     const FieldView& out, const grid::Box& region) {
    for (int k = region.lo.z; k < region.hi.z; ++k)
      for (int j = region.lo.y; j < region.hi.y; ++j)
        for (int i = region.lo.x; i < region.hi.x; ++i)
          cell(env, in, out, i, j, k);
  };
  kv.simd = [cell](const KernelEnv& env, const FieldView& in,
                   const FieldView& out, const grid::Box& region) {
    const Vec4 vvx = Vec4::broadcast(cell.vx);
    const Vec4 vvy = Vec4::broadcast(cell.vy);
    const Vec4 vvz = Vec4::broadcast(cell.vz);
    const Vec4 vdx = Vec4::broadcast(env.dx);
    const Vec4 vdy = Vec4::broadcast(env.dy);
    const Vec4 vdz = Vec4::broadcast(env.dz);
    const Vec4 vdt = Vec4::broadcast(env.dt);
    for (int k = region.lo.z; k < region.hi.z; ++k)
      for (int j = region.lo.y; j < region.hi.y; ++j) {
        int i = region.lo.x;
        for (; i + 4 <= region.hi.x; i += 4) {
          const Vec4 u = Vec4::loadu(in.ptr(i, j, k));
          const Vec4 flux =
              Vec4::vmuld(vvx, (u - Vec4::loadu(in.ptr(i - 1, j, k)))) / vdx +
              Vec4::vmuld(vvy, (u - Vec4::loadu(in.ptr(i, j - 1, k)))) / vdy +
              Vec4::vmuld(vvz, (u - Vec4::loadu(in.ptr(i, j, k - 1)))) / vdz;
          (u - Vec4::vmuld(vdt, flux)).storeu(out.ptr(i, j, k));
        }
        for (; i < region.hi.x; ++i) cell(env, in, out, i, j, k);
      }
  };
  return kv;
}

hw::KernelCost analytic_cost() {
  hw::KernelCost c;
  c.flops_per_cell = 12.0;
  c.exps_per_cell = 1.0;
  c.bytes_written_per_cell = 8.0;
  return c;
}

}  // namespace

const var::VarLabel* AdvectApp::q_label() { return var::VarLabel::create("q"); }
const var::VarLabel* AdvectApp::total_label() {
  return var::VarLabel::create("q_total");
}

double AdvectApp::exact(double x, double y, double z, double t) const {
  // Gaussian pulse initially centered at (0.3, 0.3, 0.3), translated by vt.
  const double cx = 0.3 + config_.vx * t;
  const double cy = 0.3 + config_.vy * t;
  const double cz = 0.3 + config_.vz * t;
  const double s2 = config_.pulse_width * config_.pulse_width;
  const double r2 = (x - cx) * (x - cx) + (y - cy) * (y - cy) + (z - cz) * (z - cz);
  return std::exp(-r2 / (2.0 * s2));
}

void AdvectApp::build_init_graph(task::TaskGraph& graph,
                                 const grid::Level& level) const {
  (void)level;
  auto init = task::Task::make_mpe(
      "advect_init",
      [this](const task::TaskContext& ctx, const grid::Patch& patch) -> TimePs {
        var::DataWarehouse& dw = *ctx.new_dw;
        const int ghost = dw.ghost_of(q_label(), patch.id());
        const grid::Box region = patch.ghosted(ghost);
        if (ctx.functional) {
          var::CCVariable<double>& q = dw.get(q_label(), patch.id());
          for (int k = region.lo.z; k < region.hi.z; ++k)
            for (int j = region.lo.y; j < region.hi.y; ++j)
              for (int i = region.lo.x; i < region.hi.x; ++i)
                q(i, j, k) = exact(i * ctx.level->dx(), j * ctx.level->dy(),
                                   k * ctx.level->dz(), 0.0);
        }
        return ctx.cost->mpe_compute(
            static_cast<std::uint64_t>(region.volume()), analytic_cost());
      });
  init->add_computes(q_label());
  graph.add(std::move(init));
}

bool AdvectApp::is_heavy(const grid::Level& level,
                         const grid::Patch& patch) const {
  // Distance from the initial pulse center to the patch's cell box.
  const double cx = 0.3, cy = 0.3, cz = 0.3;
  const grid::Box& b = patch.cells();
  auto clamp_dist = [](double c, double lo, double hi) {
    if (c < lo) return lo - c;
    if (c > hi) return c - hi;
    return 0.0;
  };
  const double dx_ = clamp_dist(cx, b.lo.x * level.dx(), b.hi.x * level.dx());
  const double dy_ = clamp_dist(cy, b.lo.y * level.dy(), b.hi.y * level.dy());
  const double dz_ = clamp_dist(cz, b.lo.z * level.dz(), b.hi.z * level.dz());
  const double r2 = dx_ * dx_ + dy_ * dy_ + dz_ * dz_;
  const double reach = 2.0 * config_.pulse_width;
  return r2 <= reach * reach;
}

double AdvectApp::patch_cost(const grid::Level& level,
                             const grid::Patch& patch) const {
  // A patch costs its (offloadable) kernel plus the constant MPE-side work
  // every patch incurs regardless of physics: the reduction scan, boundary
  // fill, packing, and task management. For this cheap upwind kernel the
  // MPE share is roughly five light-kernel units; ignoring it (weighting
  // by kernel alone) makes the balancer pile dozens of light patches onto
  // one rank and trade kernel imbalance for worse MPE imbalance.
  constexpr double kMpeShare = 5.0;
  const double kernel = is_heavy(level, patch) ? config_.heavy_factor : 1.0;
  return kMpeShare + kernel;
}

void AdvectApp::build_step_graph(task::TaskGraph& graph,
                                 const grid::Level& level) const {
  kern::KernelVariants kernel =
      make_upwind_kernel(config_.vx, config_.vy, config_.vz, config_.tile_shape);
  if (config_.heavy_factor != 1.0) {
    const double factor = config_.heavy_factor;
    const grid::Level* lvl = &level;
    const AdvectApp* self = this;
    kernel.cost_scale = [self, lvl, factor](const grid::Patch& patch) {
      return self->is_heavy(*lvl, patch) ? factor : 1.0;
    };
  }
  graph.add(task::Task::make_stencil("advect", q_label(), q_label(),
                                     std::move(kernel)));

  auto boundary = task::Task::make_mpe(
      "advect_boundary",
      [this](const task::TaskContext& ctx, const grid::Patch& patch) -> TimePs {
        var::DataWarehouse& dw = *ctx.new_dw;
        const int ghost = dw.ghost_of(q_label(), patch.id());
        const grid::Box domain = ctx.level->domain();
        const grid::Box g = patch.ghosted(ghost);
        std::uint64_t cells = 0;
        for (int axis = 0; axis < 3; ++axis) {
          for (int side = 0; side < 2; ++side) {
            grid::Box slab = g;
            if (side == 0) {
              if (g.lo[axis] >= domain.lo[axis]) continue;
              slab.hi[axis] = domain.lo[axis];
            } else {
              if (g.hi[axis] <= domain.hi[axis]) continue;
              slab.lo[axis] = domain.hi[axis];
            }
            cells += static_cast<std::uint64_t>(slab.volume());
            if (ctx.functional) {
              var::CCVariable<double>& q = dw.get(q_label(), patch.id());
              const double t_next = ctx.time + ctx.dt;
              for (int k = slab.lo.z; k < slab.hi.z; ++k)
                for (int j = slab.lo.y; j < slab.hi.y; ++j)
                  for (int i = slab.lo.x; i < slab.hi.x; ++i)
                    q(i, j, k) = exact(i * ctx.level->dx(), j * ctx.level->dy(),
                                       k * ctx.level->dz(), t_next);
            }
          }
        }
        return ctx.cost->mpe_compute(cells, analytic_cost());
      });
  boundary->add_modifies(q_label());
  graph.add(std::move(boundary));

  // Total mass: conserved by exact transport, dissipated only by the
  // upwind scheme's numerical diffusion and outflow.
  auto reduce = task::Task::make_reduction(
      "q_total", total_label(), task::ReduceOp::kSum,
      [](const task::TaskContext& ctx, const grid::Patch& patch) -> double {
        const var::CCVariable<double>& q = ctx.new_dw->get(q_label(), patch.id());
        double s = 0.0;
        const grid::Box& cells = patch.cells();
        for (int k = cells.lo.z; k < cells.hi.z; ++k)
          for (int j = cells.lo.y; j < cells.hi.y; ++j)
            for (int i = cells.lo.x; i < cells.hi.x; ++i)
              s += q(i, j, k);
        return s;
      });
  reduce->add_requires(q_label(), task::WhichDW::kNew, 0);
  graph.add(std::move(reduce));
}

double AdvectApp::fixed_dt(const grid::Level& level) const {
  const double cfl = config_.vx / level.dx() + config_.vy / level.dy() +
                     config_.vz / level.dz();
  USW_ASSERT(cfl > 0.0);
  return config_.cfl_safety / cfl;
}

void AdvectApp::on_rank_complete(const task::TaskContext& ctx, comm::Comm& comm,
                                 std::span<const int> my_patches,
                                 std::map<std::string, double>& metrics) const {
  if (!ctx.functional) return;
  double linf = 0.0;
  double l2sum = 0.0;
  double cells = 0.0;
  for (int pid : my_patches) {
    const var::CCVariable<double>& q = ctx.old_dw->get(q_label(), pid);
    const grid::Box interior = ctx.level->patch(pid).cells();
    for (int k = interior.lo.z; k < interior.hi.z; ++k)
      for (int j = interior.lo.y; j < interior.hi.y; ++j)
        for (int i = interior.lo.x; i < interior.hi.x; ++i) {
          const double err =
              q(i, j, k) - exact(i * ctx.level->dx(), j * ctx.level->dy(),
                                 k * ctx.level->dz(), ctx.time);
          linf = std::max(linf, std::abs(err));
          l2sum += err * err;
          cells += 1.0;
        }
  }
  linf = comm.allreduce_max(linf);
  l2sum = comm.allreduce_sum(l2sum);
  cells = comm.allreduce_sum(cells);
  metrics["linf_error"] = linf;
  metrics["l2_error"] = std::sqrt(l2sum / cells);
  if (ctx.old_dw->has_reduction(total_label()))
    metrics["q_total"] = ctx.old_dw->get_reduction(total_label());
}

}  // namespace usw::apps::advect
