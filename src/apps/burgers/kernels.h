#pragma once

// The Burgers kernel of Algorithm 1, in scalar and SIMD-vectorized form.
//
// Both variants perform identical IEEE double operations in identical
// order, so their results agree bit-for-bit (verified by tests) — the SIMD
// variant only changes how the work maps onto the (modeled) vector
// pipelines, exactly like the hand-vectorized Fortran of Algorithm 2.
//
// Note on the sign of `du`: Algorithm 1 as printed negates the whole right
// side, which would flip the diffusion term's sign relative to equation (1)
// and make forward Euler unconditionally unstable. The backward-difference
// terms of lines 2-4 already carry the advection minus sign, so we take
//   du = (u_dudx + u_dudy + u_dudz) + nu * (d2udx2 + d2udy2 + d2udz2),
// which is consistent with equation (1) and converges to the exact product
// solution (verified by tests).

#include "hw/cost_model.h"
#include "kern/kernel.h"

namespace usw::apps::burgers {

/// Per-cell operation mix of the kernel (the input to Table I):
/// 83 declared flops + 9 divisions + 6 exponentials per cell, 16 bytes of
/// main-memory traffic — a counted total of ~308 flops/cell, matching the
/// paper's ~311 with ~215 contributed by the exponentials.
hw::KernelCost burgers_kernel_cost();

/// Builds the kernel variants: scalar, SIMD (width 4, x-direction), the
/// 16x16x8 LDM tile of Sec VI-A, and the chosen exponential library.
kern::KernelVariants make_burgers_kernel(bool use_ieee_exp = false,
                                         grid::IntVec tile_shape = {16, 16, 8});

}  // namespace usw::apps::burgers
