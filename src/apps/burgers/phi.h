#pragma once

// The coefficient/solution function phi of the model problem (Sec III):
//
//   phi(x,t) = (0.1 e^a + 0.5 e^b + e^c) / (e^a + e^b + e^c)
//   a = -0.05 (x - 0.5 + 4.95 t) / nu
//   b = -0.25 (x - 0.5 + 0.75 t) / nu
//   c = -0.50 (x - 0.375)        / nu ,   nu = 0.01
//
// phi solves the 1D viscous Burgers equation, and the product
// phi(x,t) phi(y,t) phi(z,t) is the exact solution of the 3D model
// equation (1) — used for the initial condition, the Dirichlet boundary
// values, and verification.
//
// As in the paper, the numerator and denominator are divided by the
// largest of e^a, e^b, e^c, reducing the exponential count per call from
// three to two (six per cell for the three calls in the kernel). The
// function is templated over the arithmetic type (double or Vec4) and the
// exponential implementation (fast or IEEE), mirroring the scalar / SIMD
// and fast-exp / IEEE-exp kernel variants.

#include "kern/fastexp.h"
#include "kern/simd4.h"

namespace usw::apps::burgers {

inline constexpr double kViscosity = 0.01;

namespace detail {
inline double max3(double a, double b, double c) {
  const double m = a > b ? a : b;
  return m > c ? m : c;
}
inline kern::Vec4 max3(kern::Vec4 a, kern::Vec4 b, kern::Vec4 c) {
  return kern::Vec4::max(kern::Vec4::max(a, b), c);
}
}  // namespace detail

/// Vector phi: the reduction by the lane-wise maximum still evaluates all
/// three exponentials (one of them is exp(0) per lane) — per-lane branching
/// does not vectorize, which is exactly why the paper's SIMD exponential
/// speedup is modest.
template <typename ExpFn>
inline kern::Vec4 phi(kern::Vec4 x, double t, ExpFn&& exp_fn) {
  constexpr double inv_nu = 1.0 / kViscosity;
  const kern::Vec4 a = -0.05 * (x - 0.5 + 4.95 * t) * inv_nu;
  const kern::Vec4 b = -0.25 * (x - 0.5 + 0.75 * t) * inv_nu;
  const kern::Vec4 c = -0.50 * (x - 0.375) * inv_nu;
  const kern::Vec4 m = detail::max3(a, b, c);
  const kern::Vec4 ea = exp_fn(a - m);
  const kern::Vec4 eb = exp_fn(b - m);
  const kern::Vec4 ec = exp_fn(c - m);
  return (0.1 * ea + 0.5 * eb + ec) / (ea + eb + ec);
}

/// Scalar phi: branches on the largest exponent and skips its exponential,
/// so only two exponentials are evaluated per call — six per cell for the
/// kernel's three calls, matching the paper's count.
template <typename ExpFn>
inline double phi(double x, double t, ExpFn&& exp_fn) {
  constexpr double inv_nu = 1.0 / kViscosity;
  const double a = -0.05 * (x - 0.5 + 4.95 * t) * inv_nu;
  const double b = -0.25 * (x - 0.5 + 0.75 * t) * inv_nu;
  const double c = -0.50 * (x - 0.375) * inv_nu;
  double ea, eb, ec;
  if (a >= b && a >= c) {
    ea = 1.0;
    eb = exp_fn(b - a);
    ec = exp_fn(c - a);
  } else if (b >= c) {
    eb = 1.0;
    ea = exp_fn(a - b);
    ec = exp_fn(c - b);
  } else {
    ec = 1.0;
    ea = exp_fn(a - c);
    eb = exp_fn(b - c);
  }
  return (0.1 * ea + 0.5 * eb + ec) / (ea + eb + ec);
}

/// Scalar phi with the fast exponential (the production configuration).
inline double phi_fast(double x, double t) {
  return phi(x, t, [](double v) { return kern::exp_fast(v); });
}

/// Scalar phi with the IEEE exponential (reference accuracy).
inline double phi_ieee(double x, double t) {
  return phi(x, t, [](double v) { return kern::exp_ieee(v); });
}

/// Exact solution of the 3D model problem.
inline double exact_solution(double x, double y, double z, double t) {
  return phi_ieee(x, t) * phi_ieee(y, t) * phi_ieee(z, t);
}

}  // namespace usw::apps::burgers
