#include "apps/burgers/burgers_app.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "apps/burgers/kernels.h"
#include "apps/burgers/phi.h"
#include "support/error.h"

namespace usw::apps::burgers {
namespace {

/// Operation mix of one analytic phi*phi*phi fill per cell: on a slab or a
/// full box, two of the three phi factors are hoisted out of the inner
/// loop, leaving one 2-exp phi call plus two multiplies per cell.
hw::KernelCost analytic_cost() {
  hw::KernelCost c;
  c.flops_per_cell = 21.0;
  c.exps_per_cell = 2.0;
  c.divs_per_cell = 1.0;
  c.bytes_written_per_cell = 8.0;
  return c;
}

/// Fills `region` of `u` with the exact solution at time `t`.
void fill_exact(var::CCVariable<double>& u, const grid::Level& level,
                const grid::Box& region, double t) {
  for (int k = region.lo.z; k < region.hi.z; ++k) {
    const double pz = phi_ieee(k * level.dz(), t);
    for (int j = region.lo.y; j < region.hi.y; ++j) {
      const double py = phi_ieee(j * level.dy(), t);
      for (int i = region.lo.x; i < region.hi.x; ++i)
        u(i, j, k) = phi_ieee(i * level.dx(), t) * py * pz;
    }
  }
}

/// Domain-boundary slabs of the patch's ghosted box (regions the halo
/// exchange cannot fill because there is no neighbor).
std::vector<grid::Box> boundary_slabs(const grid::Level& level,
                                      const grid::Patch& patch, int ghost) {
  std::vector<grid::Box> out;
  const grid::Box domain = level.domain();
  const grid::Box g = patch.ghosted(ghost);
  for (int axis = 0; axis < 3; ++axis) {
    if (g.lo[axis] < domain.lo[axis]) {
      grid::Box slab = g;
      slab.hi[axis] = domain.lo[axis];
      out.push_back(slab);
    }
    if (g.hi[axis] > domain.hi[axis]) {
      grid::Box slab = g;
      slab.lo[axis] = domain.hi[axis];
      out.push_back(slab);
    }
  }
  // Slabs from different axes overlap at corners; that is harmless (the
  // same analytic value is written twice) and keeps the geometry simple.
  return out;
}

}  // namespace

const var::VarLabel* BurgersApp::u_label() { return var::VarLabel::create("u"); }
const var::VarLabel* BurgersApp::umax_label() {
  return var::VarLabel::create("u_max");
}

void BurgersApp::build_init_graph(task::TaskGraph& graph,
                                  const grid::Level& level) const {
  (void)level;
  auto init = task::Task::make_mpe(
      "initialize",
      [](const task::TaskContext& ctx, const grid::Patch& patch) -> TimePs {
        var::DataWarehouse& dw = *ctx.new_dw;
        const int ghost = dw.ghost_of(u_label(), patch.id());
        const grid::Box region = patch.ghosted(ghost);
        if (ctx.functional)
          fill_exact(dw.get(u_label(), patch.id()), *ctx.level, region, 0.0);
        return ctx.cost->mpe_compute(
            static_cast<std::uint64_t>(region.volume()), analytic_cost());
      });
  init->add_computes(u_label());
  graph.add(std::move(init));
}

void BurgersApp::build_step_graph(task::TaskGraph& graph,
                                  const grid::Level& level) const {
  kern::KernelVariants kernel =
      make_burgers_kernel(config_.use_ieee_exp, config_.tile_shape);
  if (config_.hotspot_factor != 1.0) {
    // Tiles whose center lies within hotspot_radius (normalized) of the
    // domain center cost hotspot_factor x in the virtual-time model. This
    // skews the per-tile cost distribution without touching the numerics,
    // so static z-partitions leave CPEs idle while dynamic policies don't.
    const double factor = config_.hotspot_factor;
    const double radius = config_.hotspot_radius;
    const grid::Box domain = level.domain();
    kernel.tile_cost_scale = [domain, factor, radius](const grid::Box& tile) {
      double d2 = 0.0;
      for (int axis = 0; axis < 3; ++axis) {
        const double extent =
            static_cast<double>(domain.hi[axis] - domain.lo[axis]);
        const double center = 0.5 * (tile.lo[axis] + tile.hi[axis]);
        const double t = (center - domain.lo[axis]) / extent - 0.5;
        d2 += t * t;
      }
      return d2 <= radius * radius ? factor : 1.0;
    };
  }
  graph.add(task::Task::make_stencil("advance", u_label(), u_label(),
                                     std::move(kernel)));

  auto boundary = task::Task::make_mpe(
      "boundary",
      [](const task::TaskContext& ctx, const grid::Patch& patch) -> TimePs {
        var::DataWarehouse& dw = *ctx.new_dw;
        const int ghost = dw.ghost_of(u_label(), patch.id());
        std::uint64_t cells = 0;
        for (const grid::Box& slab : boundary_slabs(*ctx.level, patch, ghost)) {
          cells += static_cast<std::uint64_t>(slab.volume());
          if (ctx.functional)
            fill_exact(dw.get(u_label(), patch.id()), *ctx.level, slab,
                       ctx.time + ctx.dt);
        }
        return ctx.cost->mpe_compute(cells, analytic_cost());
      });
  boundary->add_modifies(u_label());
  graph.add(std::move(boundary));

  auto reduce = task::Task::make_reduction(
      "u_max", umax_label(), task::ReduceOp::kMax,
      [](const task::TaskContext& ctx, const grid::Patch& patch) -> double {
        const var::CCVariable<double>& u = ctx.new_dw->get(u_label(), patch.id());
        double m = -std::numeric_limits<double>::infinity();
        const grid::Box& cells = patch.cells();
        for (int k = cells.lo.z; k < cells.hi.z; ++k)
          for (int j = cells.lo.y; j < cells.hi.y; ++j)
            for (int i = cells.lo.x; i < cells.hi.x; ++i)
              m = std::max(m, std::abs(u(i, j, k)));
        return m;
      });
  reduce->add_requires(u_label(), task::WhichDW::kNew, 0);
  graph.add(std::move(reduce));
}

double BurgersApp::fixed_dt(const grid::Level& level) const {
  // Forward Euler stability: advection (|phi| <= 1) and diffusion limits.
  const double h = std::min({level.dx(), level.dy(), level.dz()});
  const double adv_limit = h;
  const double diff_limit = h * h / (6.0 * kViscosity);
  return config_.cfl_safety * std::min(adv_limit, diff_limit);
}

void BurgersApp::on_rank_complete(const task::TaskContext& ctx,
                                  comm::Comm& comm,
                                  std::span<const int> my_patches,
                                  std::map<std::string, double>& metrics) const {
  if (!ctx.functional) return;
  // After the final swap the old DW holds the last computed solution at
  // ctx.time; compare against the exact product solution.
  double linf = 0.0;
  double l2sum = 0.0;
  double cells = 0.0;
  for (int pid : my_patches) {
    const var::CCVariable<double>& u = ctx.old_dw->get(u_label(), pid);
    const grid::Box interior = ctx.level->patch(pid).cells();
    for (int k = interior.lo.z; k < interior.hi.z; ++k)
      for (int j = interior.lo.y; j < interior.hi.y; ++j)
        for (int i = interior.lo.x; i < interior.hi.x; ++i) {
          const double exact =
              exact_solution(i * ctx.level->dx(), j * ctx.level->dy(),
                             k * ctx.level->dz(), ctx.time);
          const double err = u(i, j, k) - exact;
          linf = std::max(linf, std::abs(err));
          l2sum += err * err;
          cells += 1.0;
        }
  }
  linf = comm.allreduce_max(linf);
  l2sum = comm.allreduce_sum(l2sum);
  cells = comm.allreduce_sum(cells);
  metrics["linf_error"] = linf;
  metrics["l2_error"] = std::sqrt(l2sum / cells);
  if (ctx.old_dw->has_reduction(umax_label()))
    metrics["u_max"] = ctx.old_dw->get_reduction(umax_label());
}

}  // namespace usw::apps::burgers
