#include "apps/burgers/kernels.h"

#include "apps/burgers/phi.h"
#include "kern/fastexp.h"
#include "kern/simd4.h"

namespace usw::apps::burgers {
namespace {

using kern::FieldView;
using kern::KernelEnv;
using kern::Vec4;

/// One cell of Algorithm 1, shared by the scalar kernel and the SIMD
/// epilogue so remainders match the vector lanes bit-for-bit.
template <typename ExpFn>
inline void cell(const KernelEnv& env, const FieldView& u0, const FieldView& u1,
                 int i, int j, int k, ExpFn&& exp_fn) {
  const double dx = env.dx, dy = env.dy, dz = env.dz;
  const double u = *u0.ptr(i, j, k);
  const double u_dudx =
      phi(i * dx, env.time, exp_fn) * (*u0.ptr(i - 1, j, k) - u) / dx;
  const double u_dudy =
      phi(j * dy, env.time, exp_fn) * (*u0.ptr(i, j - 1, k) - u) / dy;
  const double u_dudz =
      phi(k * dz, env.time, exp_fn) * (*u0.ptr(i, j, k - 1) - u) / dz;
  // Parenthesized to match the SIMD variant's vmad(-2,u, uxm+uxp) rounding
  // exactly, so scalar and vector runs agree bit-for-bit.
  const double d2udx2 =
      (-2.0 * u + (*u0.ptr(i - 1, j, k) + *u0.ptr(i + 1, j, k))) / (dx * dx);
  const double d2udy2 =
      (-2.0 * u + (*u0.ptr(i, j - 1, k) + *u0.ptr(i, j + 1, k))) / (dy * dy);
  const double d2udz2 =
      (-2.0 * u + (*u0.ptr(i, j, k - 1) + *u0.ptr(i, j, k + 1))) / (dz * dz);
  const double du =
      (u_dudx + u_dudy + u_dudz) + kViscosity * (d2udx2 + d2udy2 + d2udz2);
  *u1.ptr(i, j, k) = u + env.dt * du;
}

template <typename ExpFn>
void scalar_kernel(const KernelEnv& env, const FieldView& u0,
                   const FieldView& u1, const grid::Box& region,
                   ExpFn&& exp_fn) {
  for (int k = region.lo.z; k < region.hi.z; ++k)
    for (int j = region.lo.y; j < region.hi.y; ++j)
      for (int i = region.lo.x; i < region.hi.x; ++i)
        cell(env, u0, u1, i, j, k, exp_fn);
}

/// Vectorized along x with width 4 (Algorithm 2); the y/z phi factors are
/// broadcast, and a scalar epilogue handles the remainder cells. The
/// scalar and vector phi agree exactly because exp(0) == 1 exactly.
template <typename ScalarExp, typename VecExp>
void simd_kernel(const KernelEnv& env, const FieldView& u0, const FieldView& u1,
                 const grid::Box& region, ScalarExp&& sexp, VecExp&& vexp) {
  const double dx = env.dx, dy = env.dy, dz = env.dz;
  const Vec4 vdx = Vec4::broadcast(dx);
  const Vec4 vdy = Vec4::broadcast(dy);
  const Vec4 vdz = Vec4::broadcast(dz);
  const Vec4 vdx2 = Vec4::broadcast(dx * dx);
  const Vec4 vdy2 = Vec4::broadcast(dy * dy);
  const Vec4 vdz2 = Vec4::broadcast(dz * dz);
  const Vec4 vnu = Vec4::broadcast(kViscosity);
  const Vec4 vdt = Vec4::broadcast(env.dt);
  const Vec4 vm2 = Vec4::broadcast(-2.0);

  for (int k = region.lo.z; k < region.hi.z; ++k) {
    const Vec4 phi_z = Vec4::broadcast(phi(k * dz, env.time, sexp));
    for (int j = region.lo.y; j < region.hi.y; ++j) {
      const Vec4 phi_y = Vec4::broadcast(phi(j * dy, env.time, sexp));
      int i = region.lo.x;
      for (; i + 4 <= region.hi.x; i += 4) {
        const Vec4 xi{i * dx, (i + 1) * dx, (i + 2) * dx, (i + 3) * dx};
        const Vec4 phi_x = phi(xi, env.time, vexp);
        const Vec4 u = Vec4::loadu(u0.ptr(i, j, k));
        const Vec4 uxm = Vec4::loadu(u0.ptr(i - 1, j, k));
        const Vec4 uxp = Vec4::loadu(u0.ptr(i + 1, j, k));
        const Vec4 uym = Vec4::loadu(u0.ptr(i, j - 1, k));
        const Vec4 uyp = Vec4::loadu(u0.ptr(i, j + 1, k));
        const Vec4 uzm = Vec4::loadu(u0.ptr(i, j, k - 1));
        const Vec4 uzp = Vec4::loadu(u0.ptr(i, j, k + 1));

        const Vec4 u_dudx = Vec4::vmuld(phi_x, (uxm - u)) / vdx;
        const Vec4 u_dudy = Vec4::vmuld(phi_y, (uym - u)) / vdy;
        const Vec4 u_dudz = Vec4::vmuld(phi_z, (uzm - u)) / vdz;
        const Vec4 d2udx2 = Vec4::vmad(vm2, u, uxm + uxp) / vdx2;
        const Vec4 d2udy2 = Vec4::vmad(vm2, u, uym + uyp) / vdy2;
        const Vec4 d2udz2 = Vec4::vmad(vm2, u, uzm + uzp) / vdz2;
        const Vec4 du = (u_dudx + u_dudy + u_dudz) +
                        Vec4::vmuld(vnu, (d2udx2 + d2udy2 + d2udz2));
        Vec4::vmad(vdt, du, u).storeu(u1.ptr(i, j, k));
      }
      for (; i < region.hi.x; ++i) cell(env, u0, u1, i, j, k, sexp);
    }
  }
}

}  // namespace

hw::KernelCost burgers_kernel_cost() {
  hw::KernelCost c;
  c.flops_per_cell = 83.0;
  c.exps_per_cell = 6.0;
  c.divs_per_cell = 9.0;
  c.bytes_read_per_cell = 8.0;
  c.bytes_written_per_cell = 8.0;
  return c;
}

kern::KernelVariants make_burgers_kernel(bool use_ieee_exp,
                                         grid::IntVec tile_shape) {
  kern::KernelVariants kv;
  kv.cost = burgers_kernel_cost();
  kv.ghost = 1;
  kv.tile_shape = tile_shape;
  kv.use_ieee_exp = use_ieee_exp;
  if (use_ieee_exp) {
    kv.scalar = [](const KernelEnv& env, const FieldView& in,
                   const FieldView& out, const grid::Box& region) {
      scalar_kernel(env, in, out, region,
                    [](double v) { return kern::exp_ieee(v); });
    };
    kv.simd = [](const KernelEnv& env, const FieldView& in,
                 const FieldView& out, const grid::Box& region) {
      simd_kernel(env, in, out, region,
                  [](double v) { return kern::exp_ieee(v); },
                  [](Vec4 v) {
                    return Vec4{kern::exp_ieee(v[0]), kern::exp_ieee(v[1]),
                                kern::exp_ieee(v[2]), kern::exp_ieee(v[3])};
                  });
    };
  } else {
    kv.scalar = [](const KernelEnv& env, const FieldView& in,
                   const FieldView& out, const grid::Box& region) {
      scalar_kernel(env, in, out, region,
                    [](double v) { return kern::exp_fast(v); });
    };
    kv.simd = [](const KernelEnv& env, const FieldView& in,
                 const FieldView& out, const grid::Box& region) {
      simd_kernel(env, in, out, region,
                  [](double v) { return kern::exp_fast(v); },
                  [](Vec4 v) { return kern::exp_fast(v); });
    };
  }
  return kv;
}

}  // namespace usw::apps::burgers
