#pragma once

// The model fluid-flow application of Sec III: the 3D variable-coefficient
// Burgers equation, discretized with backward differences (advection),
// central differences (diffusion), and forward Euler in time, on the unit
// cube with the exact product solution phi(x,t)phi(y,t)phi(z,t) as initial
// and Dirichlet boundary condition.
//
// Timestep task graph (the paper's workload):
//   1. "advance"  - the offloadable Burgers stencil (Algorithm 1):
//                   requires u(old, 1 ghost), computes u(new);
//   2. "boundary" - MPE task writing the analytic boundary values into the
//                   domain-boundary halo of u(new) for the next step;
//   3. "u_max"    - reduction of max|u| (the delT-style reduction that
//                   exercises scheduler step 3d).

#include "runtime/application.h"

namespace usw::apps::burgers {

class BurgersApp : public runtime::Application {
 public:
  struct Config {
    bool use_ieee_exp = false;            ///< Sec VI-C library choice
    grid::IntVec tile_shape{16, 16, 8};   ///< Sec VI-A tile size
    double cfl_safety = 0.25;             ///< fraction of the stability limit
    /// Synthetic per-tile load skew (uswsim --hotspot): tiles whose center
    /// falls inside a sphere around the domain center cost this factor in
    /// the virtual-time model (1.0 = uniform). Physics is unchanged; the
    /// skew exists to exercise the tile scheduling policies.
    double hotspot_factor = 1.0;
    /// Hotspot sphere radius as a fraction of the domain extent (the
    /// normalized distance from the domain center below which a tile is
    /// "hot"). Only meaningful when hotspot_factor != 1.0.
    double hotspot_radius = 0.25;
  };

  BurgersApp() = default;
  explicit BurgersApp(Config config) : config_(config) {}

  std::string name() const override { return "burgers3d"; }
  void build_init_graph(task::TaskGraph& graph,
                        const grid::Level& level) const override;
  void build_step_graph(task::TaskGraph& graph,
                        const grid::Level& level) const override;
  double fixed_dt(const grid::Level& level) const override;
  void on_rank_complete(const task::TaskContext& ctx, comm::Comm& comm,
                        std::span<const int> my_patches,
                        std::map<std::string, double>& metrics) const override;

  /// The solution variable "u".
  static const var::VarLabel* u_label();
  /// The reduction result "u_max".
  static const var::VarLabel* umax_label();

  const Config& config() const { return config_; }

 private:
  Config config_{};
};

}  // namespace usw::apps::burgers
