#pragma once

// A second application on the same runtime: 3D heat diffusion
//   u_t = alpha * laplacian(u)
// with the exact separable solution
//   u(x,y,z,t) = exp(-3 alpha pi^2 t) sin(pi x) sin(pi y) sin(pi z)
// as initial condition, Dirichlet boundary values, and verification
// reference.
//
// The app exists to demonstrate that the public API is not Burgers-shaped:
// a different kernel (7-point, exponential-free), a different reduction
// (L2 norm), and a different operation mix flow through the identical
// task/scheduler machinery.

#include "runtime/application.h"

namespace usw::apps::heat {

class HeatApp : public runtime::Application {
 public:
  struct Config {
    double alpha = 0.1;                  ///< diffusivity
    /// Same LDM budget as the Burgers tile: 1 ghosted field in + 1 out of
    /// 16x16x8 cells is ~42 KB of the 64 KB scratch pad.
    grid::IntVec tile_shape{16, 16, 8};
    double cfl_safety = 0.25;
    /// Diffusion sub-steps chained *within* one timestep (1 or 2). With 2,
    /// each stage advances dt/2 through an intermediate variable whose
    /// freshly computed halo is exchanged mid-step — the new-DW ghost
    /// dependency path of the task graph, including same-step MPI.
    int stages = 1;
    /// Explicit timestep; 0 = derive from the stability limit.
    double dt_override = 0.0;
  };

  HeatApp() = default;
  explicit HeatApp(Config config) : config_(config) {}

  std::string name() const override { return "heat3d"; }
  void build_init_graph(task::TaskGraph& graph,
                        const grid::Level& level) const override;
  void build_step_graph(task::TaskGraph& graph,
                        const grid::Level& level) const override;
  double fixed_dt(const grid::Level& level) const override;
  void on_rank_complete(const task::TaskContext& ctx, comm::Comm& comm,
                        std::span<const int> my_patches,
                        std::map<std::string, double>& metrics) const override;

  static const var::VarLabel* t_label();
  static const var::VarLabel* half_label();  ///< stage-1 output (stages == 2)
  static const var::VarLabel* norm_label();

  /// Exact solution used for init/boundary/verification.
  double exact(double x, double y, double z, double t) const;

  const Config& config() const { return config_; }

 private:
  std::unique_ptr<task::Task> make_boundary_task(const std::string& name,
                                                 const var::VarLabel* label,
                                                 double time_frac) const;

  Config config_{};
};

}  // namespace usw::apps::heat
