#include "apps/heat/heat_app.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "kern/simd4.h"
#include "support/error.h"

namespace usw::apps::heat {
namespace {

using kern::FieldView;
using kern::KernelEnv;
using kern::Vec4;

/// Diffusivity (and the per-stage fraction of dt) is baked into the kernel
/// closures at graph-build time; the rest of the environment arrives per
/// step via KernelEnv.
struct HeatCell {
  double alpha;
  double dt_factor;  ///< fraction of the step this stage advances

  inline void operator()(const KernelEnv& env, const FieldView& u0,
                         const FieldView& u1, int i, int j, int k) const {
    const double u = *u0.ptr(i, j, k);
    const double lap =
        (-2.0 * u + (*u0.ptr(i - 1, j, k) + *u0.ptr(i + 1, j, k))) /
            (env.dx * env.dx) +
        (-2.0 * u + (*u0.ptr(i, j - 1, k) + *u0.ptr(i, j + 1, k))) /
            (env.dy * env.dy) +
        (-2.0 * u + (*u0.ptr(i, j, k - 1) + *u0.ptr(i, j, k + 1))) /
            (env.dz * env.dz);
    *u1.ptr(i, j, k) = u + (env.dt * dt_factor) * (alpha * lap);
  }
};

hw::KernelCost heat_cost() {
  hw::KernelCost c;
  c.flops_per_cell = 12.0;
  c.divs_per_cell = 3.0;
  c.bytes_read_per_cell = 8.0;
  c.bytes_written_per_cell = 8.0;
  return c;
}

kern::KernelVariants make_heat_kernel(double alpha, grid::IntVec tile_shape,
                                      double dt_factor) {
  kern::KernelVariants kv;
  kv.cost = heat_cost();
  kv.ghost = 1;
  kv.tile_shape = tile_shape;
  const HeatCell cell{alpha, dt_factor};
  kv.scalar = [cell](const KernelEnv& env, const FieldView& in,
                     const FieldView& out, const grid::Box& region) {
    for (int k = region.lo.z; k < region.hi.z; ++k)
      for (int j = region.lo.y; j < region.hi.y; ++j)
        for (int i = region.lo.x; i < region.hi.x; ++i)
          cell(env, in, out, i, j, k);
  };
  kv.simd = [cell, alpha](const KernelEnv& env, const FieldView& in,
                          const FieldView& out, const grid::Box& region) {
    const Vec4 vm2 = Vec4::broadcast(-2.0);
    const Vec4 vdx2 = Vec4::broadcast(env.dx * env.dx);
    const Vec4 vdy2 = Vec4::broadcast(env.dy * env.dy);
    const Vec4 vdz2 = Vec4::broadcast(env.dz * env.dz);
    const Vec4 valpha = Vec4::broadcast(alpha);
    const Vec4 vdt = Vec4::broadcast(env.dt * cell.dt_factor);
    for (int k = region.lo.z; k < region.hi.z; ++k)
      for (int j = region.lo.y; j < region.hi.y; ++j) {
        int i = region.lo.x;
        for (; i + 4 <= region.hi.x; i += 4) {
          const Vec4 u = Vec4::loadu(in.ptr(i, j, k));
          const Vec4 lap =
              Vec4::vmad(vm2, u, Vec4::loadu(in.ptr(i - 1, j, k)) +
                                     Vec4::loadu(in.ptr(i + 1, j, k))) /
                  vdx2 +
              Vec4::vmad(vm2, u, Vec4::loadu(in.ptr(i, j - 1, k)) +
                                     Vec4::loadu(in.ptr(i, j + 1, k))) /
                  vdy2 +
              Vec4::vmad(vm2, u, Vec4::loadu(in.ptr(i, j, k - 1)) +
                                     Vec4::loadu(in.ptr(i, j, k + 1))) /
                  vdz2;
          Vec4::vmad(vdt, Vec4::vmuld(valpha, lap), u).storeu(out.ptr(i, j, k));
        }
        for (; i < region.hi.x; ++i) cell(env, in, out, i, j, k);
      }
  };
  return kv;
}

hw::KernelCost analytic_cost() {
  hw::KernelCost c;
  c.flops_per_cell = 8.0;  // three sin evaluations approximated as flops
  c.bytes_written_per_cell = 8.0;
  return c;
}

}  // namespace

const var::VarLabel* HeatApp::t_label() { return var::VarLabel::create("temperature"); }
const var::VarLabel* HeatApp::half_label() {
  return var::VarLabel::create("temperature_half");
}
const var::VarLabel* HeatApp::norm_label() {
  return var::VarLabel::create("temperature_norm2");
}

double HeatApp::exact(double x, double y, double z, double t) const {
  constexpr double pi = std::numbers::pi;
  return std::exp(-3.0 * config_.alpha * pi * pi * t) * std::sin(pi * x) *
         std::sin(pi * y) * std::sin(pi * z);
}

void HeatApp::build_init_graph(task::TaskGraph& graph,
                               const grid::Level& level) const {
  (void)level;
  auto init = task::Task::make_mpe(
      "heat_init",
      [this](const task::TaskContext& ctx, const grid::Patch& patch) -> TimePs {
        var::DataWarehouse& dw = *ctx.new_dw;
        const int ghost = dw.ghost_of(t_label(), patch.id());
        const grid::Box region = patch.ghosted(ghost);
        if (ctx.functional) {
          var::CCVariable<double>& u = dw.get(t_label(), patch.id());
          for (int k = region.lo.z; k < region.hi.z; ++k)
            for (int j = region.lo.y; j < region.hi.y; ++j)
              for (int i = region.lo.x; i < region.hi.x; ++i)
                u(i, j, k) = exact(i * ctx.level->dx(), j * ctx.level->dy(),
                                   k * ctx.level->dz(), 0.0);
        }
        return ctx.cost->mpe_compute(
            static_cast<std::uint64_t>(region.volume()), analytic_cost());
      });
  init->add_computes(t_label());
  graph.add(std::move(init));
}

std::unique_ptr<task::Task> HeatApp::make_boundary_task(
    const std::string& name, const var::VarLabel* label, double time_frac) const {
  auto boundary = task::Task::make_mpe(
      name,
      [this, label, time_frac](const task::TaskContext& ctx,
                               const grid::Patch& patch) -> TimePs {
        var::DataWarehouse& dw = *ctx.new_dw;
        const int ghost = dw.ghost_of(label, patch.id());
        const grid::Box domain = ctx.level->domain();
        const grid::Box g = patch.ghosted(ghost);
        std::uint64_t cells = 0;
        for (int axis = 0; axis < 3; ++axis) {
          for (int side = 0; side < 2; ++side) {
            grid::Box slab = g;
            if (side == 0) {
              if (g.lo[axis] >= domain.lo[axis]) continue;
              slab.hi[axis] = domain.lo[axis];
            } else {
              if (g.hi[axis] <= domain.hi[axis]) continue;
              slab.lo[axis] = domain.hi[axis];
            }
            cells += static_cast<std::uint64_t>(slab.volume());
            if (ctx.functional) {
              var::CCVariable<double>& u = dw.get(label, patch.id());
              const double t_bc = ctx.time + ctx.dt * time_frac;
              for (int k = slab.lo.z; k < slab.hi.z; ++k)
                for (int j = slab.lo.y; j < slab.hi.y; ++j)
                  for (int i = slab.lo.x; i < slab.hi.x; ++i)
                    u(i, j, k) = exact(i * ctx.level->dx(), j * ctx.level->dy(),
                                       k * ctx.level->dz(), t_bc);
            }
          }
        }
        return ctx.cost->mpe_compute(cells, analytic_cost());
      });
  boundary->add_modifies(label);
  return boundary;
}

void HeatApp::build_step_graph(task::TaskGraph& graph,
                               const grid::Level& level) const {
  (void)level;
  USW_ASSERT_MSG(config_.stages == 1 || config_.stages == 2,
                 "HeatApp supports 1 or 2 stages");
  if (config_.stages == 1) {
    graph.add(task::Task::make_stencil(
        "heat_advance", t_label(), t_label(),
        make_heat_kernel(config_.alpha, config_.tile_shape, 1.0)));
    graph.add(make_boundary_task("heat_boundary", t_label(), 1.0));
  } else {
    // Stage 1: temperature(old) -> temperature_half(new), advancing dt/2;
    // its boundary values are set at t + dt/2. Stage 2 consumes the
    // *same-step* halo of temperature_half — including remote exchange of
    // the freshly computed data — and advances the second dt/2.
    graph.add(task::Task::make_stencil(
        "heat_stage1", t_label(), half_label(),
        make_heat_kernel(config_.alpha, config_.tile_shape, 0.5)));
    graph.add(make_boundary_task("heat_boundary_half", half_label(), 0.5));
    graph.add(task::Task::make_stencil(
        "heat_stage2", half_label(), t_label(),
        make_heat_kernel(config_.alpha, config_.tile_shape, 0.5),
        task::WhichDW::kNew));
    graph.add(make_boundary_task("heat_boundary", t_label(), 1.0));
  }

  auto reduce = task::Task::make_reduction(
      "temperature_norm2", norm_label(), task::ReduceOp::kSum,
      [](const task::TaskContext& ctx, const grid::Patch& patch) -> double {
        const var::CCVariable<double>& u = ctx.new_dw->get(t_label(), patch.id());
        double s = 0.0;
        const grid::Box& cells = patch.cells();
        for (int k = cells.lo.z; k < cells.hi.z; ++k)
          for (int j = cells.lo.y; j < cells.hi.y; ++j)
            for (int i = cells.lo.x; i < cells.hi.x; ++i)
              s += u(i, j, k) * u(i, j, k);
        return s;
      });
  reduce->add_requires(t_label(), task::WhichDW::kNew, 0);
  graph.add(std::move(reduce));
}

double HeatApp::fixed_dt(const grid::Level& level) const {
  if (config_.dt_override > 0.0) return config_.dt_override;
  const double h = std::min({level.dx(), level.dy(), level.dz()});
  return config_.cfl_safety * h * h / (6.0 * config_.alpha);
}

void HeatApp::on_rank_complete(const task::TaskContext& ctx, comm::Comm& comm,
                               std::span<const int> my_patches,
                               std::map<std::string, double>& metrics) const {
  if (!ctx.functional) return;
  double linf = 0.0;
  double l2sum = 0.0;
  double cells = 0.0;
  for (int pid : my_patches) {
    const var::CCVariable<double>& u = ctx.old_dw->get(t_label(), pid);
    const grid::Box interior = ctx.level->patch(pid).cells();
    for (int k = interior.lo.z; k < interior.hi.z; ++k)
      for (int j = interior.lo.y; j < interior.hi.y; ++j)
        for (int i = interior.lo.x; i < interior.hi.x; ++i) {
          const double err =
              u(i, j, k) - exact(i * ctx.level->dx(), j * ctx.level->dy(),
                                 k * ctx.level->dz(), ctx.time);
          linf = std::max(linf, std::abs(err));
          l2sum += err * err;
          cells += 1.0;
        }
  }
  linf = comm.allreduce_max(linf);
  l2sum = comm.allreduce_sum(l2sum);
  cells = comm.allreduce_sum(cells);
  metrics["linf_error"] = linf;
  metrics["l2_error"] = std::sqrt(l2sum / cells);
  if (ctx.old_dw->has_reduction(norm_label()))
    metrics["norm2"] = ctx.old_dw->get_reduction(norm_label());
}

}  // namespace usw::apps::heat
