#include "support/error.h"

#include <cstdio>
#include <cstdlib>

namespace usw::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "uintah-sw assertion failed: %s\n  at %s:%d\n", expr,
               file, line);
  if (!msg.empty()) std::fprintf(stderr, "  %s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace usw::detail
