#include "support/units.h"

#include <cmath>
#include <sstream>

#include "support/error.h"

namespace usw {

TimePs seconds_to_ps(double s) {
  USW_ASSERT_MSG(s >= 0.0, "negative duration");
  const double ticks = s * 1e12;
  USW_ASSERT_MSG(ticks < 9.2e18, "duration overflows TimePs");
  return static_cast<TimePs>(std::llround(ticks));
}

std::string format_duration(TimePs t) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  const double d = static_cast<double>(t);
  if (t < kNanosecond) {
    os << t << " ps";
  } else if (t < kMicrosecond) {
    os << d / static_cast<double>(kNanosecond) << " ns";
  } else if (t < kMillisecond) {
    os << d / static_cast<double>(kMicrosecond) << " us";
  } else if (t < kSecond) {
    os << d / static_cast<double>(kMillisecond) << " ms";
  } else {
    os << d / static_cast<double>(kSecond) << " s";
  }
  return os.str();
}

std::string format_bytes(std::uint64_t bytes) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed;
  const double b = static_cast<double>(bytes);
  if (bytes < 1_KiB) {
    os << bytes << " B";
  } else if (bytes < 1_MiB) {
    os << b / static_cast<double>(1_KiB) << " KiB";
  } else if (bytes < 1_GiB) {
    os << b / static_cast<double>(1_MiB) << " MiB";
  } else {
    os << b / static_cast<double>(1_GiB) << " GiB";
  }
  return os.str();
}

}  // namespace usw
