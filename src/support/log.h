#pragma once

// Minimal leveled logger.
//
// Controlled by the USW_LOG environment variable ("error", "warn", "info",
// "debug", "trace") or programmatically via set_level(). Thread safe: a
// whole record is formatted into one string and written with a single mutex-
// protected fwrite, so interleaved ranks do not shred each other's lines.

#include <sstream>
#include <string>

namespace usw::log {

enum class Level : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Current threshold; records above it are dropped.
Level level();
void set_level(Level lvl);

/// True if a record at `lvl` would be emitted.
inline bool enabled(Level lvl) { return static_cast<int>(lvl) <= static_cast<int>(level()); }

/// Emit one record (appends newline).
void write(Level lvl, const std::string& msg);

namespace detail {
class Record {
 public:
  explicit Record(Level lvl) : lvl_(lvl) {}
  ~Record() { write(lvl_, os_.str()); }
  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;
  template <typename T>
  Record& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace usw::log

#define USW_LOG(lvl)                                  \
  if (!::usw::log::enabled(::usw::log::Level::lvl)) { \
  } else                                              \
    ::usw::log::detail::Record(::usw::log::Level::lvl)

#define USW_ERROR USW_LOG(kError)
#define USW_WARN USW_LOG(kWarn)
#define USW_INFO USW_LOG(kInfo)
#define USW_DEBUG USW_LOG(kDebug)
#define USW_TRACE USW_LOG(kTrace)
