#pragma once

// Plain-text table and CSV emission for the benchmark harness. Every
// reproduced paper table/figure is printed through this so outputs share
// one format and can be diffed between runs.

#include <iosfwd>
#include <string>
#include <vector>

namespace usw {

/// Column-aligned text table with an optional title, mirroring the layout
/// of the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 3);
  /// Formats a ratio as a percentage string like "57.6%".
  static std::string pct(double ratio, int precision = 1);

  std::size_t rows() const { return rows_.size(); }

  /// Renders the aligned table.
  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Renders as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace usw
