#pragma once

// Running statistics and simple sample summaries used by the benchmark
// harness and the scheduler instrumentation.

#include <cstddef>
#include <vector>

namespace usw {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set (linear interpolation, p in [0,100]).
/// Returns 0 for an empty sample set, so possibly-empty distributions can
/// be summarized without a guard at every call site.
/// Copies and sorts; intended for end-of-run summaries, not hot paths.
double percentile(std::vector<double> samples, double p);

}  // namespace usw
