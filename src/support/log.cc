#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace usw::log {
namespace {

Level parse_env() {
  // Read exactly once, during static initialization, before any worker
  // thread exists — no concurrent setenv can race with it.
  const char* env = std::getenv("USW_LOG");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "trace") == 0) return Level::kTrace;
  return Level::kWarn;
}

std::atomic<int> g_level{static_cast<int>(parse_env())};
std::mutex g_mutex;

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::kError: return "E";
    case Level::kWarn: return "W";
    case Level::kInfo: return "I";
    case Level::kDebug: return "D";
    case Level::kTrace: return "T";
  }
  return "?";
}

}  // namespace

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

void set_level(Level lvl) { g_level.store(static_cast<int>(lvl), std::memory_order_relaxed); }

void write(Level lvl, const std::string& msg) {
  std::string line;
  line.reserve(msg.size() + 8);
  line += "[usw ";
  line += tag(lvl);
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace usw::log
