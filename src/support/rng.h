#pragma once

// Deterministic pseudo-random numbers for tests and synthetic workloads.
//
// The simulator itself never consumes randomness (determinism is a design
// requirement), but property tests and load-imbalance injection need a
// reproducible source. SplitMix64 is small, fast, and well distributed.

#include <cstdint>

namespace usw {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be nonzero.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) { return lo + (hi - lo) * next_double(); }

 private:
  std::uint64_t state_;
};

}  // namespace usw
