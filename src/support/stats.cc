#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace usw {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  USW_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double pos = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

}  // namespace usw
