#pragma once

// Tiny command-line option parser for examples and benchmark drivers.
//
// Accepts "--key=value" and bare "--flag" (boolean true). Anything not
// starting with "--" is collected as a positional argument. The space-
// separated "--key value" form is intentionally not supported: it is
// ambiguous against positionals following a bare flag.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace usw {

class Options {
 public:
  Options() = default;
  Options(int argc, const char* const* argv) { parse(argc, argv); }

  void parse(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& def = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// All parsed key/value pairs (for echoing the configuration).
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace usw
