#pragma once

// Unit helpers shared by the hardware model and benchmark output.
//
// Virtual time throughout the simulator is an integer count of picoseconds
// (`TimePs`). Integer time makes the discrete-event simulation exactly
// reproducible: no accumulation-order effects, no platform-dependent
// rounding. One tick = 1 ps; the representable range (~106 days) is far
// beyond any simulated run.

#include <cstdint>
#include <string>

namespace usw {

using TimePs = std::int64_t;

inline constexpr TimePs kPicosecond = 1;
inline constexpr TimePs kNanosecond = 1000;
inline constexpr TimePs kMicrosecond = 1000 * kNanosecond;
inline constexpr TimePs kMillisecond = 1000 * kMicrosecond;
inline constexpr TimePs kSecond = 1000 * kMillisecond;

/// Converts seconds (double) to picoseconds, rounding to nearest tick.
TimePs seconds_to_ps(double s);

/// Converts picoseconds to seconds.
inline double ps_to_seconds(TimePs t) { return static_cast<double>(t) * 1e-12; }

/// Human-readable duration like "1.234 ms".
std::string format_duration(TimePs t);

/// Human-readable byte count like "2.0 GB" (powers of two).
std::string format_bytes(std::uint64_t bytes);

inline constexpr std::uint64_t operator"" _KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr std::uint64_t operator"" _MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
inline constexpr std::uint64_t operator"" _GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

}  // namespace usw
