#include "support/build_info.h"

// The USW_BUILD_* macros are injected by src/support/CMakeLists.txt at
// configure time; fall back to neutral values so the file also compiles
// standalone (e.g. in tooling that lifts sources out of the build).
#ifndef USW_BUILD_VERSION
#define USW_BUILD_VERSION "0.0.0"
#endif
#ifndef USW_BUILD_GIT_SHA
#define USW_BUILD_GIT_SHA "unknown"
#endif
#ifndef USW_BUILD_TYPE
#define USW_BUILD_TYPE "unspecified"
#endif
#ifndef USW_BUILD_SANITIZE
#define USW_BUILD_SANITIZE "none"
#endif

#define USW_STR2(x) #x
#define USW_STR(x) USW_STR2(x)

namespace usw {

namespace {

const char* compiler_string() {
#if defined(__clang__)
  return "clang " USW_STR(__clang_major__) "." USW_STR(__clang_minor__) "." USW_STR(
      __clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " USW_STR(__GNUC__) "." USW_STR(__GNUC_MINOR__) "." USW_STR(
      __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
      USW_BUILD_VERSION,
      USW_BUILD_GIT_SHA,
      compiler_string(),
      USW_BUILD_TYPE[0] != '\0' ? USW_BUILD_TYPE : "unspecified",
      USW_BUILD_SANITIZE[0] != '\0' ? USW_BUILD_SANITIZE : "none",
  };
  return info;
}

std::string build_info_line() {
  const BuildInfo& b = build_info();
  std::string out;
  out += "uswsim ";
  out += b.version;
  out += " (";
  out += b.git_sha;
  out += ") ";
  out += b.compiler;
  out += " build=";
  out += b.build_type;
  out += " sanitizers=";
  out += b.sanitizers;
  return out;
}

}  // namespace usw
