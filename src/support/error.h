#pragma once

// Error handling for uintah-sw.
//
// The runtime distinguishes programmer errors (checked with USW_ASSERT,
// always on: a simulator that silently corrupts virtual time is useless)
// from environment/configuration errors (thrown as usw::Error subclasses).

#include <stdexcept>
#include <string>

namespace usw {

/// Base class for all uintah-sw errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

/// A configuration value is out of range or inconsistent.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& msg) : Error("config error: " + msg) {}
};

/// An operation was attempted in a state that does not allow it.
class StateError : public Error {
 public:
  explicit StateError(const std::string& msg) : Error("state error: " + msg) {}
};

/// A resource limit of the modeled hardware was exceeded (e.g. the 64 KB
/// per-CPE local data memory).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& msg) : Error("resource error: " + msg) {}
};

/// The runtime access checker (src/check) found a violated correctness
/// invariant and was configured to fail fast.
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& msg)
      : Error("validation error: " + msg) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace usw

/// Always-on assertion. Prints expression + location and aborts.
#define USW_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::usw::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Assertion with an explanatory message (streams into a std::string).
#define USW_ASSERT_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) ::usw::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
