#pragma once

// Build provenance: which sources, compiler, and instrumentation produced
// this binary. Embedded in `uswsim --version`, diagnostic dumps, and
// BENCH_*.json so benchmark baselines and crash reports stay traceable to
// the build that produced them.

#include <string>

namespace usw {

struct BuildInfo {
  const char* version;    // project version
  const char* git_sha;    // short commit sha at configure time, or "unknown"
  const char* compiler;   // compiler id + version string
  const char* build_type; // CMAKE_BUILD_TYPE, or "unspecified"
  const char* sanitizers; // USW_SANITIZE cmake option value, or "none"
};

const BuildInfo& build_info();

/// One-line human-readable banner, e.g.
/// "uswsim 0.1.0 (abc1234) gcc 13.2.0 build=Release sanitizers=none".
std::string build_info_line();

}  // namespace usw
