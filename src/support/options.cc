#include "support/options.h"

#include <cstdlib>
#include <stdexcept>

#include "support/error.h"

namespace usw {

void Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      values_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw ConfigError("option --" + key + " expects an integer, got '" + it->second + "'");
  }
}

double Options::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw ConfigError("option --" + key + " expects a number, got '" + it->second + "'");
  }
}

bool Options::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ConfigError("option --" + key + " expects a boolean, got '" + v + "'");
}

}  // namespace usw
