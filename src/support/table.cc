#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.h"

namespace usw {

void TextTable::set_header(std::vector<std::string> header) {
  USW_ASSERT_MSG(rows_.empty(), "set_header after rows were added");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  USW_ASSERT_MSG(header_.empty() || row.size() == header_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double ratio, int precision) {
  return num(ratio * 100.0, precision) + "%";
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&width](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << "=== " << title_ << " ===\n";
  auto emit = [&os, &width](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i])) << row[i];
      if (i + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace usw
